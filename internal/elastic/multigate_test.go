package elastic

import (
	"testing"

	"p4all/internal/ilpgen"
	"p4all/internal/structures"
)

func mkTestPlanes(t *testing.T, n int) []*Plane {
	t.Helper()
	planes := make([]*Plane, n)
	for i := range planes {
		cms, err := structures.NewCountMinSketch(2, 64)
		if err != nil {
			t.Fatal(err)
		}
		kv, err := structures.NewKVStore(1, 64)
		if err != nil {
			t.Fatal(err)
		}
		planes[i] = &Plane{CMS: cms, KV: kv}
	}
	return planes
}

func TestMultiGateSwapAllStampsSharedEpoch(t *testing.T) {
	g, err := NewMultiGate(mkTestPlanes(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if g.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", g.Shards())
	}
	if g.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", g.Epoch())
	}
	for s := 0; s < 4; s++ {
		p, e := g.Load(s)
		if e != 1 || p.Epoch != 1 {
			t.Fatalf("shard %d: load epoch %d, plane epoch %d, want 1/1", s, e, p.Epoch)
		}
	}
	next := mkTestPlanes(t, 4)
	e, err := g.SwapAll(next)
	if err != nil {
		t.Fatal(err)
	}
	if e != 2 {
		t.Fatalf("swap epoch = %d, want 2", e)
	}
	for s := 0; s < 4; s++ {
		p, le := g.Load(s)
		if le != 2 || p.Epoch != 2 {
			t.Fatalf("shard %d after swap: load epoch %d, plane epoch %d, want 2/2", s, le, p.Epoch)
		}
		if p != next[s] {
			t.Fatalf("shard %d did not receive its replacement plane", s)
		}
	}
}

func TestMultiGateRejectsShardCountMismatch(t *testing.T) {
	if _, err := NewMultiGate(nil); err == nil {
		t.Fatal("NewMultiGate(nil) accepted an empty plane set")
	}
	g, err := NewMultiGate(mkTestPlanes(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.SwapAll(mkTestPlanes(t, 2)); err == nil {
		t.Fatal("SwapAll accepted a plane set of the wrong shard count")
	}
	// A rejected swap must not disturb the published set.
	if g.Epoch() != 1 || g.Shards() != 3 {
		t.Fatalf("after rejected swap: epoch %d shards %d, want 1/3", g.Epoch(), g.Shards())
	}
}

func TestMultiGatePlanesReturnsCopy(t *testing.T) {
	g, err := NewMultiGate(mkTestPlanes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	ps := g.Planes()
	ps[0] = nil
	if p, _ := g.Load(0); p == nil {
		t.Fatal("mutating the Planes() slice leaked into the gate")
	}
}

func TestMigrateShardsFiltersHotKeysByOwner(t *testing.T) {
	l := &ilpgen.Layout{Symbolics: map[string]int64{
		"cms_rows": 2, "cms_cols": 32, "kv_parts": 1, "kv_slots": 64,
	}}
	old := make([]*Plane, 2)
	for i := range old {
		p, err := NewPlane(l)
		if err != nil {
			t.Fatal(err)
		}
		old[i] = p
	}
	route := func(k uint64) int { return int(k % 2) }
	// Populate each shard only with the keys it owns, as the runtime
	// would.
	for k := uint64(0); k < 20; k++ {
		s := route(k)
		old[s].CMS.Add(k, uint32(k+1))
		old[s].KV.Put(k, k*3)
	}
	hot := make([]KeyCount, 0, 20)
	for k := uint64(0); k < 20; k++ {
		hot = append(hot, KeyCount{Key: k, Count: k + 1})
	}
	// Re-shape the CMS so migration takes the hot-key re-admission path.
	l2 := &ilpgen.Layout{Symbolics: map[string]int64{
		"cms_rows": 2, "cms_cols": 64, "kv_parts": 1, "kv_slots": 64,
	}}
	planes, dropped, err := MigrateShards(old, l2, hot, route)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d KV entries into a same-shape store", dropped)
	}
	if len(planes) != 2 {
		t.Fatalf("got %d planes, want 2", len(planes))
	}
	for k := uint64(0); k < 20; k++ {
		s := route(k)
		// The owning shard carries the key's state (Put can evict
		// colliders, so only keys still in the old store must survive);
		// the other shard must not have absorbed it.
		if _, had := old[s].KV.Get(k); had {
			if v, ok := planes[s].KV.Get(k); !ok || v != k*3 {
				t.Fatalf("shard %d lost key %d after migration", s, k)
			}
		}
		if _, ok := planes[1-s].KV.Get(k); ok {
			t.Fatalf("key %d leaked into shard %d during migration", k, 1-s)
		}
		if est := planes[s].CMS.Estimate(k); est < uint32(k+1) {
			t.Fatalf("shard %d CMS underestimates key %d after migration: %d < %d", s, k, est, k+1)
		}
		if est := planes[1-s].CMS.Estimate(k); est > 0 && est >= uint32(k+1) && k > 4 {
			// Cross-shard hash collisions can produce small nonzero
			// estimates, but a full carried count means the filter failed.
			t.Fatalf("shard %d absorbed key %d's carried count", 1-s, k)
		}
	}
	// Route pointing outside the shard range is rejected.
	if _, _, err := MigrateShards(old, l2, hot, func(uint64) int { return 7 }); err == nil {
		t.Fatal("MigrateShards accepted an out-of-range route")
	}
}
