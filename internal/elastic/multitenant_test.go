package elastic

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p4all/internal/ilp"
	"p4all/internal/modules"
	"p4all/internal/multitenant"
)

// miniNetCache is a NetCache-shaped program (CMS + KV store, no
// forwarding table) small enough that a two-tenant joint solve stays in
// the tens of milliseconds.
func miniNetCache() string {
	return modules.Compose(modules.FlowHeader,
		modules.CountMinSketch(modules.Instance{Prefix: "cms", Key: "pkt.flow"}),
		modules.KeyValueStore(modules.Instance{Prefix: "kv", Key: "pkt.flow", Seed: 16}),
		`
control main {
    apply {
        cms_update.apply();
        kv_read.apply();
    }
}

assume cms_rows >= 1 && cms_rows <= 2;
assume cms_cols >= 256;
assume kv_parts >= 1 && kv_parts <= 2;
assume kv_slots >= 64;

optimize 0.5 * (cms_rows * cms_cols) + 0.5 * (kv_parts * kv_slots);
`)
}

func mtTestConfig() MTConfig {
	return MTConfig{
		Target: driftTarget(),
		Tenants: []multitenant.Tenant{
			{Name: "left", Source: miniNetCache(), MinUtility: 256},
			{Name: "right", Source: miniNetCache(), MinUtility: 256},
		},
		Solver: ilp.Options{Gap: 0.05, NodeLimit: 2000, TimeLimit: 30 * time.Second},
	}
}

// TestMTReweightShrinksOneGrowsOther: the tentpole's elastic scenario —
// flipping the fairness weights between two tenants sharing one
// pipeline shrinks the disfavored tenant and strictly grows the favored
// one, in a single epoch-stamped swap of both planes.
func TestMTReweightShrinksOneGrowsOther(t *testing.T) {
	c, err := NewMT(mtTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Gate().Shards() != 2 {
		t.Fatalf("got %d shards, want 2", c.Gate().Shards())
	}
	// Establish an incumbent that favors left, then flip.
	if _, err := c.Reweight([]float64{2, 0.5}, nil); err != nil {
		t.Fatal(err)
	}
	beforeLeft := c.Result().Tenant("left").Utility
	beforeRight := c.Result().Tenant("right").Utility
	epochBefore := c.Gate().Epoch()
	dec, err := c.Reweight([]float64{0.5, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != ActionAdopted {
		t.Fatalf("flip not adopted: %v (%s)", dec.Action, dec.Reason)
	}
	if dec.Stats == nil || !dec.Stats.WarmStarted {
		t.Errorf("re-solve was not warm-started: %+v", dec.Stats)
	}
	if dec.Epoch != epochBefore+1 {
		t.Errorf("epoch %d after adoption, want %d", dec.Epoch, epochBefore+1)
	}
	if got := dec.Utilities["right"]; got <= beforeRight {
		t.Errorf("favored tenant right did not grow: %g -> %g", beforeRight, got)
	}
	if got := dec.Utilities["left"]; got >= beforeLeft {
		t.Errorf("disfavored tenant left did not shrink: %g -> %g", beforeLeft, got)
	}
	// Both planes carry the same epoch: the shrink and the grow were one
	// transition.
	for _, name := range []string{"left", "right"} {
		p := c.Plane(name)
		if p == nil {
			t.Fatalf("tenant %s has no plane", name)
		}
		if p.Epoch != dec.Epoch {
			t.Errorf("tenant %s plane at epoch %d, gate at %d", name, p.Epoch, dec.Epoch)
		}
		if p.Layout.Symbolic("cms_rows") < 1 || p.Layout.Symbolic("kv_parts") < 1 {
			t.Errorf("tenant %s plane shapes collapsed: %v", name, p.Layout.Symbolics)
		}
	}
}

// TestMTObserveDriftReweights: the drift plumbing — a skew step on one
// tenant's traffic runs the weight policy and the joint re-solve.
func TestMTObserveDriftReweights(t *testing.T) {
	cfg := mtTestConfig()
	cfg.Policy = func(tenant int, d Drift, weights []float64) []float64 {
		weights[tenant] = 3 // drift earns the observed tenant a big raise
		return weights
	}
	c, err := NewMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		dec, err := c.Observe("right", window(0.55, 0))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Action != ActionNone {
			t.Fatalf("stable window %d: %v (%s)", i, dec.Action, dec.Reason)
		}
	}
	dec, err := c.Observe("right", window(0.04, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Drift.Triggered {
		t.Fatal("skew step did not trigger drift")
	}
	if dec.Action != ActionAdopted {
		t.Fatalf("drift reweight not adopted: %v (%s)", dec.Action, dec.Reason)
	}
	if w := c.Weights(); w[1] != 3 {
		t.Errorf("policy weights not adopted: %v", w)
	}
	if _, err := c.Observe("ghost", window(0.5, 0)); err == nil {
		t.Error("unknown tenant accepted")
	}
}

// TestMTSwapStorm hammers the shared gate from reader goroutines while
// the controller storms reweights between two tenants, and checks the
// migration safety invariants on every load (run under -race in CI):
//
//   - a loaded plane is always complete and consistently epoch-stamped;
//   - the CMS never under-estimates a seeded hot key mid-swap (counts
//     are carried or re-admitted, never silently zeroed);
//   - the KV store never drops partitions mid-swap (its shape always
//     matches its own layout) and the hottest key — first in line for
//     re-admission — is never lost.
func TestMTSwapStorm(t *testing.T) {
	c, err := NewMT(mtTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Seed identifiable state into both tenants' planes before any
	// reader or swap starts.
	hot := []KeyCount{{Key: 11, Count: 100}, {Key: 22, Count: 90}, {Key: 33, Count: 80}, {Key: 44, Count: 70}}
	names := []string{"left", "right"}
	for _, name := range names {
		p := c.Plane(name)
		for _, kc := range hot {
			p.CMS.Add(kc.Key, uint32(kc.Count))
		}
		p.KV.Put(hot[0].Key, hot[0].Key*10)
	}
	hotMap := map[string][]KeyCount{"left": hot, "right": hot}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	fail := func(format string, args ...interface{}) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for shard := 0; shard < c.Gate().Shards(); shard++ {
					p, e := c.Gate().Load(shard)
					if p.Epoch != e {
						fail("shard %d: plane epoch %d loaded at epoch %d", shard, p.Epoch, e)
					}
					for _, kc := range hot {
						if est := p.CMS.Estimate(kc.Key); uint64(est) < kc.Count {
							fail("shard %d epoch %d: CMS estimate for key %d fell to %d (< %d)", shard, e, kc.Key, est, kc.Count)
						}
					}
					if p.KV.Parts() != int(p.Layout.Symbolic("kv_parts")) {
						fail("shard %d epoch %d: KV has %d partitions, layout says %d", shard, e, p.KV.Parts(), p.Layout.Symbolic("kv_parts"))
					}
					if _, ok := p.KV.Get(hot[0].Key); !ok {
						fail("shard %d epoch %d: hottest key %d dropped from KV", shard, e, hot[0].Key)
					}
				}
			}
		}()
	}

	adopted := 0
	for i := 0; i < 10; i++ {
		w := []float64{2, 0.5}
		if i%2 == 1 {
			w = []float64{0.5, 2}
		}
		dec, err := c.Reweight(w, hotMap)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
		if dec.Action == ActionAdopted {
			adopted++
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if adopted < 2 {
		t.Errorf("storm adopted only %d of 10 reweights; the swap path went untested", adopted)
	}
	if e := c.Gate().Epoch(); e < uint64(1+adopted) {
		t.Errorf("gate epoch %d after %d adoptions", e, adopted)
	}
}
