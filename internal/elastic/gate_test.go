package elastic

import (
	"sync"
	"testing"

	"p4all/internal/structures"
)

// TestGateEpochConsistencyUnderSwap drives packet processing through
// the gate while a controller goroutine keeps swapping fully-built
// planes in. Run under -race (CI does): the reader must always see a
// (plane, epoch) pair from a single Swap — never a torn mix — and the
// plane it loaded stays safe to mutate until its next Load.
func TestGateEpochConsistencyUnderSwap(t *testing.T) {
	mkPlane := func() *Plane {
		cms, err := structures.NewCountMinSketch(2, 64)
		if err != nil {
			t.Fatal(err)
		}
		kv, err := structures.NewKVStore(1, 64)
		if err != nil {
			t.Fatal(err)
		}
		return &Plane{CMS: cms, KV: kv}
	}
	g := NewGate(mkPlane())
	if _, e := g.Load(); e != 1 {
		t.Fatalf("initial epoch = %d, want 1", e)
	}

	const swaps = 200
	const packetsPerLoad = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 4)

	// The packet processor: loads a plane, owns it for a burst of
	// packets, loads again.
	wg.Add(1)
	go func() {
		defer wg.Done()
		key := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, epoch := g.Load()
			if p.Epoch != epoch {
				errs <- "torn load: plane epoch does not match gate epoch"
				return
			}
			for i := 0; i < packetsPerLoad; i++ {
				key++
				if _, ok := p.KV.Get(key); !ok {
					if p.CMS.Update(key) >= 4 {
						p.KV.Put(key, key*3)
					}
				}
			}
		}
	}()

	// A monitor that only checks pair consistency.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p, epoch := g.Load()
			if p.Epoch != epoch {
				errs <- "monitor saw torn load"
				return
			}
		}
	}()

	// The controller: builds replacement planes off to the side and
	// swaps them in.
	var lastEpoch uint64
	for i := 0; i < swaps; i++ {
		p := mkPlane()
		// Pre-populate off to the side — allowed: the plane is not
		// published yet.
		for k := uint64(0); k < 32; k++ {
			p.CMS.Update(k)
		}
		e := g.Swap(p)
		if e <= lastEpoch {
			t.Fatalf("epoch went backwards: %d after %d", e, lastEpoch)
		}
		lastEpoch = e
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := g.Epoch(); got != swaps+1 {
		t.Fatalf("final epoch = %d, want %d", got, swaps+1)
	}
}
