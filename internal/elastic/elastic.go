// Package elastic closes the loop the paper leaves open: P4All
// compiles a program once, for one anticipated workload, but §3.2's
// NetCache case study shows the right CMS/KV split depends on the
// traffic actually observed. This package is a runtime reoptimization
// controller. It watches per-window traffic statistics, detects
// workload drift (skew change, key-popularity churn, request-rate
// shift), re-runs the compiler with a reweighted utility and a
// warm-started ILP solve seeded from the incumbent layout, migrates
// live structure state to the new shapes, and atomically swaps the
// data plane — falling back to the incumbent when the re-solve times
// out or fails to improve utility.
//
// The pieces compose as:
//
//	traffic window ─Summarize→ WindowStats ─Detector→ Drift
//	     Drift ─Controller→ warm core.Compile → utility check
//	     adopt: Migrate (CMS re-hash + KV re-admission) → Gate.Swap
//	     reject: keep incumbent, record an obs event
//
// Detector, Gate, and the migration helpers are application-agnostic;
// Controller and Plane are written against the NetCache data plane
// (the paper's running elastic application).
package elastic

import "sort"

// KeyCount pairs a key with its request count inside one window.
type KeyCount struct {
	Key   uint64
	Count uint64
}

// WindowStats summarizes one observation window of traffic — the
// controller's only view of the workload.
type WindowStats struct {
	// Requests is the number of requests in the window.
	Requests int
	// Hits is how many of them the data plane served from cache.
	Hits int
	// TopShare is the fraction of requests going to the TopK hottest
	// keys — the skew signal (≈0.56 at Zipf 1.1 over 50k keys,
	// ≈0.04 at Zipf 0.5).
	TopShare float64
	// TopK records how many head keys TopShare covers.
	TopK int
	// HotKeys lists the window's hottest keys, descending count. The
	// controller re-admits these into migrated structures and uses
	// their counts as the popularity ranking for KV migration.
	HotKeys []KeyCount
	// Rate is the window's request rate in requests per second; zero
	// disables rate-shift detection.
	Rate float64
}

// HitRate returns the window's cache hit rate.
func (w WindowStats) HitRate() float64 {
	if w.Requests == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Requests)
}

// Summarize builds WindowStats from a window's request keys. topK sets
// the head size for the skew signal; hotN bounds how many hot keys are
// carried for migration (clamped up to topK).
func Summarize(keys []uint64, hits, topK, hotN int) WindowStats {
	counts := make(map[uint64]uint64, len(keys))
	for _, k := range keys {
		counts[k]++
	}
	all := make([]KeyCount, 0, len(counts))
	for k, c := range counts {
		all = append(all, KeyCount{Key: k, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if hotN < topK {
		hotN = topK
	}
	if hotN > len(all) {
		hotN = len(all)
	}
	k := topK
	if k > len(all) {
		k = len(all)
	}
	var head uint64
	for _, kc := range all[:k] {
		head += kc.Count
	}
	share := 0.0
	if len(keys) > 0 {
		share = float64(head) / float64(len(keys))
	}
	return WindowStats{
		Requests: len(keys),
		Hits:     hits,
		TopShare: share,
		TopK:     topK,
		HotKeys:  all[:hotN],
	}
}
