package elastic

import (
	"fmt"
	"sync"
)

// Gate publishes the active data plane to the packet-processing
// goroutine with epoch-stamped atomic swaps. The controller builds and
// state-migrates a replacement Plane entirely off to the side, then
// Swap makes it visible in one step: a reader either sees the complete
// old plane or the complete new one, never a mix — the "consistent
// layout" invariant of the reoptimization loop. The plane returned by
// Load is owned by the reader until its next Load (see sim.Pipeline's
// ownership note); the controller never mutates a published plane.
type Gate struct {
	mu    sync.Mutex
	epoch uint64
	plane *Plane
}

// NewGate starts a gate serving the given plane at epoch 1.
func NewGate(p *Plane) *Gate {
	g := &Gate{}
	g.Swap(p)
	return g
}

// Load returns the active plane and the epoch it was installed at.
// The pair is consistent: the plane's own Epoch field always equals
// the returned epoch.
func (g *Gate) Load() (*Plane, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.plane, g.epoch
}

// Epoch returns the current epoch without loading the plane.
func (g *Gate) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Swap installs a fully-built plane and returns its new epoch.
func (g *Gate) Swap(p *Plane) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch++
	p.Epoch = g.epoch
	g.plane = p
	return g.epoch
}

// MultiGate extends Gate to a sharded data plane: N planes — one per
// shard, each owned by its shard's goroutine between Loads — published
// under a single shared epoch. SwapAll replaces every plane in one
// step, so the set of planes a reader can observe is always from one
// epoch; there is never a moment where shard 0 serves the new layout
// while shard 1 still serves the old one *and both are visible at
// different epochs*. The cross-shard freshness invariant ("no shard
// processes a batch against epoch e while another processes against
// e'") is not the gate's to enforce — it requires quiescing the shards
// around the swap, which is internal/serve.Runtime.Quiesce's job; the
// gate guarantees only that what is published is a complete,
// consistently-stamped plane set.
type MultiGate struct {
	mu     sync.Mutex
	epoch  uint64
	planes []*Plane
}

// NewMultiGate starts a gate serving the given per-shard planes at
// epoch 1. The slice is copied; at least one plane is required.
func NewMultiGate(planes []*Plane) (*MultiGate, error) {
	if len(planes) == 0 {
		return nil, fmt.Errorf("elastic: MultiGate needs at least one plane")
	}
	g := &MultiGate{}
	if _, err := g.SwapAll(planes); err != nil {
		return nil, err
	}
	return g, nil
}

// Shards returns the number of per-shard planes.
func (g *MultiGate) Shards() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.planes)
}

// Load returns shard's active plane and the epoch the whole set was
// installed at. The plane's own Epoch field always equals the returned
// epoch; the plane is owned by the caller until its next Load.
func (g *MultiGate) Load(shard int) (*Plane, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.planes[shard], g.epoch
}

// Epoch returns the current epoch without loading a plane.
func (g *MultiGate) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Planes returns the current plane set (a copied slice; the planes
// themselves are the live ones). Callers must not mutate the planes
// unless the shards are quiesced — this is the migration read path,
// which internal/serve runs inside its quiesce window.
func (g *MultiGate) Planes() []*Plane {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Plane(nil), g.planes...)
}

// SwapAll atomically installs a fully-built plane set, stamping every
// plane with the same new epoch, and returns it. The replacement must
// have one plane per shard (the shard count is fixed at construction).
func (g *MultiGate) SwapAll(planes []*Plane) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.planes != nil && len(planes) != len(g.planes) {
		return 0, fmt.Errorf("elastic: SwapAll with %d planes, gate has %d shards", len(planes), len(g.planes))
	}
	g.epoch++
	for _, p := range planes {
		p.Epoch = g.epoch
	}
	g.planes = append([]*Plane(nil), planes...)
	return g.epoch, nil
}
