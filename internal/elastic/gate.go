package elastic

import "sync"

// Gate publishes the active data plane to the packet-processing
// goroutine with epoch-stamped atomic swaps. The controller builds and
// state-migrates a replacement Plane entirely off to the side, then
// Swap makes it visible in one step: a reader either sees the complete
// old plane or the complete new one, never a mix — the "consistent
// layout" invariant of the reoptimization loop. The plane returned by
// Load is owned by the reader until its next Load (see sim.Pipeline's
// ownership note); the controller never mutates a published plane.
type Gate struct {
	mu    sync.Mutex
	epoch uint64
	plane *Plane
}

// NewGate starts a gate serving the given plane at epoch 1.
func NewGate(p *Plane) *Gate {
	g := &Gate{}
	g.Swap(p)
	return g
}

// Load returns the active plane and the epoch it was installed at.
// The pair is consistent: the plane's own Epoch field always equals
// the returned epoch.
func (g *Gate) Load() (*Plane, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.plane, g.epoch
}

// Epoch returns the current epoch without loading the plane.
func (g *Gate) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Swap installs a fully-built plane and returns its new epoch.
func (g *Gate) Swap(p *Plane) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.epoch++
	p.Epoch = g.epoch
	g.plane = p
	return g.epoch
}
