package check

import (
	"fmt"
	"strings"

	"p4all/internal/ilp"
)

// IsolationViolation is one breach of the multi-tenant model
// partition: a constraint or variable that couples tenants outside the
// declared shared rows.
type IsolationViolation struct {
	Constraint string // offending constraint name ("" for a variable)
	Var        string // offending variable name, when one is implicated
	Reason     string
}

func (v IsolationViolation) String() string {
	switch {
	case v.Constraint != "" && v.Var != "":
		return fmt.Sprintf("constraint %s: variable %s: %s", v.Constraint, v.Var, v.Reason)
	case v.Constraint != "":
		return fmt.Sprintf("constraint %s: %s", v.Constraint, v.Reason)
	default:
		return fmt.Sprintf("variable %s: %s", v.Var, v.Reason)
	}
}

// scope returns the name's namespace (the segment before the first
// '/') and whether it has one.
func scope(name string) (string, bool) {
	i := strings.IndexByte(name, '/')
	if i < 0 {
		return "", false
	}
	return name[:i], true
}

// ModelIsolation audits a joint multi-tenant model against the
// partition GenerateJoint promises: every variable and constraint is
// namespaced to a tenant or to the shared "joint" scope, a
// tenant-scoped constraint mentions only that tenant's variables (no
// cross-tenant register, precedence, or PHV coupling), and only
// "joint"-scoped rows — the declared resource budgets, utility floors,
// and max-min links — may span tenants. A nil return means the model
// is properly partitioned.
//
// The audit is structural, not semantic: it proves no constraint row
// couples two tenants, which is exactly the property that makes the
// per-tenant difftest oracle sound (a tenant's feasible set depends on
// other tenants only through the joint resource rows).
func ModelIsolation(m *ilp.Model, tenants []string) []IsolationViolation {
	known := make(map[string]bool, len(tenants))
	for _, t := range tenants {
		known[t] = true
	}
	var out []IsolationViolation
	violate := func(constr, v, reason string, args ...interface{}) {
		out = append(out, IsolationViolation{
			Constraint: constr,
			Var:        v,
			Reason:     fmt.Sprintf(reason, args...),
		})
	}
	varScope := make([]string, m.NumVars())
	for i := 0; i < m.NumVars(); i++ {
		name := m.VarName(ilp.Var(i))
		s, ok := scope(name)
		switch {
		case !ok:
			violate("", name, "variable belongs to no tenant namespace")
		case s != "joint" && !known[s]:
			violate("", name, "variable namespace %q is not a declared tenant", s)
		default:
			varScope[i] = s
		}
	}
	m.EachConstr(func(name string, expr ilp.Expr, op ilp.Op, rhs float64) {
		s, ok := scope(name)
		switch {
		case !ok:
			violate(name, "", "constraint belongs to no tenant namespace")
			return
		case s == "joint":
			return // the declared shared rows may span tenants
		case !known[s]:
			violate(name, "", "constraint namespace %q is not a declared tenant", s)
			return
		}
		expr.Terms(func(v ilp.Var, c float64) {
			if vs := varScope[v]; vs != s {
				violate(name, m.VarName(v),
					"tenant %s constraint couples a variable of tenant %s", s, vs)
			}
		})
	})
	return out
}
