package check

import (
	"strings"
	"testing"

	"p4all/internal/apps"
	"p4all/internal/lang"
	"p4all/internal/modules"
)

func resolve(t *testing.T, src string) *lang.Unit {
	t.Helper()
	u, err := lang.ParseAndResolve(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestCleanProgramHasNoWarnings(t *testing.T) {
	u := resolve(t, modules.StandaloneCMS())
	if ws := Bounds(u); len(ws) != 0 {
		t.Errorf("library CMS flagged: %v", ws)
	}
}

func TestAllLibraryModulesClean(t *testing.T) {
	for name, src := range map[string]string{
		"cms":   modules.StandaloneCMS(),
		"bloom": modules.StandaloneBloom(),
		"kvs":   modules.StandaloneKVS(),
		"ht":    modules.StandaloneHashTable(),
		"idt":   modules.StandaloneIDTable(),
	} {
		u := resolve(t, src)
		if ws := Bounds(u); len(ws) != 0 {
			t.Errorf("%s flagged: %v", name, ws)
		}
	}
}

func TestAllAppsClean(t *testing.T) {
	for _, app := range apps.All() {
		u := resolve(t, app.Source)
		if ws := Bounds(u); len(ws) != 0 {
			t.Errorf("%s flagged: %v", app.Name, ws)
		}
	}
}

func TestCrossSymbolicIndexFlagged(t *testing.T) {
	// meta.v is sized by m but indexed by a loop over n: unsafe unless
	// the assumes prove m >= n.
	src := `
symbolic int n;
symbolic int m;
struct meta { bit<32>[m] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.acc + meta.v[i]; }
control main { apply { for (i < n) { a()[i]; } } }
`
	u := resolve(t, src)
	ws := Bounds(u)
	if len(ws) == 0 {
		t.Fatal("cross-symbolic index not flagged")
	}
	if !strings.Contains(ws[0].Reason, "prove m >= n") {
		t.Errorf("warning lacks guidance: %v", ws[0])
	}
}

func TestCrossSymbolicIndexProvenByAssumes(t *testing.T) {
	src := `
symbolic int n;
symbolic int m;
assume n <= 4;
assume m >= 4;
struct meta { bit<32>[m] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.acc + meta.v[i]; }
control main { apply { for (i < n) { a()[i]; } } }
`
	u := resolve(t, src)
	if ws := Bounds(u); len(ws) != 0 {
		t.Errorf("proven-safe access flagged: %v", ws)
	}
}

func TestConstExtentVsUnboundedLoopFlagged(t *testing.T) {
	src := `
symbolic int n;
struct meta { bit<32>[8] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.acc + meta.v[i]; }
control main { apply { for (i < n) { a()[i]; } } }
`
	u := resolve(t, src)
	ws := Bounds(u)
	if len(ws) == 0 {
		t.Fatal("constant extent under unbounded loop not flagged")
	}
}

func TestConstExtentProvenByAssume(t *testing.T) {
	src := `
symbolic int n;
assume n <= 8;
struct meta { bit<32>[8] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.acc + meta.v[i]; }
control main { apply { for (i < n) { a()[i]; } } }
`
	u := resolve(t, src)
	if ws := Bounds(u); len(ws) != 0 {
		t.Errorf("assume-bounded loop flagged: %v", ws)
	}
}

func TestConstIndexBeyondExtentFlagged(t *testing.T) {
	src := `
struct meta { bit<32>[4] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.v[i]; }
control main { apply { a()[7]; } }
`
	u := resolve(t, src)
	ws := Bounds(u)
	if len(ws) == 0 {
		t.Fatal("constant index 7 into extent 4 not flagged")
	}
}

func TestConstIndexOutsideLoopFallsBackToConstCheck(t *testing.T) {
	// Regression: a()[k] outside any elastic loop reaches the IdxParam
	// case with no loop symbolic. The checker must fall back to the
	// invocation's constant index — proving the in-bounds call safe
	// instead of warning "indexed call outside any elastic loop".
	safe := `
struct meta { bit<32>[4] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.v[i]; }
control main { apply { a()[3]; } }
`
	if ws := Bounds(resolve(t, safe)); len(ws) != 0 {
		t.Errorf("in-bounds const-index call outside a loop flagged: %v", ws)
	}

	// And the out-of-bounds call must get the precise constant-index
	// diagnosis, not the generic outside-a-loop one.
	unsafe := `
struct meta { bit<32>[4] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.v[i]; }
control main { apply { a()[4]; } }
`
	ws := Bounds(resolve(t, unsafe))
	if len(ws) == 0 {
		t.Fatal("constant index 4 into extent 4 not flagged")
	}
	if ws[0].Index != "4" || !strings.Contains(ws[0].Reason, "extent is 4") {
		t.Errorf("fallback lost the constant-index diagnosis: %v", ws[0])
	}
	for _, w := range ws {
		if strings.Contains(w.Reason, "outside any elastic loop") {
			t.Errorf("const-index call misdiagnosed as loopless: %v", w)
		}
	}
}

func TestConstIndexIntoSymbolicExtent(t *testing.T) {
	// idx 2 into an array sized s: safe only with assume s >= 3.
	unsafe := `
symbolic int s;
symbolic int n;
struct meta { bit<32>[s] v; bit<32> acc; }
action a()[int i] { meta.acc = meta.v[i]; }
control main { apply { for (i < n) { a()[i]; } a()[2]; } }
`
	u := resolve(t, unsafe)
	found := false
	for _, w := range Bounds(u) {
		if strings.Contains(w.Reason, "assume s >= 3") {
			found = true
		}
	}
	if !found {
		t.Errorf("constant index into symbolic extent not flagged with guidance: %v", Bounds(u))
	}
	safe := "symbolic int s;\nassume s >= 3;\n" + strings.SplitN(unsafe, "\n", 3)[2]
	_ = safe
}
