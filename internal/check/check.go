// Package check implements the static verification the paper's §7
// leaves as future work: proving that every index used with a symbolic
// (elastic) array stays in bounds. The checker compares each access's
// index range against the array's extent using the loop structure and
// the program's assume-derived intervals, reporting a warning for any
// access it cannot prove safe.
package check

import (
	"fmt"

	"p4all/internal/lang"
	"p4all/internal/unroll"
)

// Warning is one potential out-of-bounds access.
type Warning struct {
	Action string
	Target string // array being indexed
	Index  string // description of the index
	Reason string
}

func (w Warning) String() string {
	return fmt.Sprintf("%s: index %s of %s may be out of bounds: %s", w.Action, w.Index, w.Target, w.Reason)
}

// Bounds statically checks every elastic-array access of the program.
// A nil slice means every access was proven in bounds.
func Bounds(u *lang.Unit) []Warning {
	c := &checker{u: u, assume: unroll.AssumeBounds(u)}
	for _, inv := range u.Invocations {
		c.invocation(inv)
	}
	return c.warnings
}

type checker struct {
	u        *lang.Unit
	assume   map[*lang.Symbolic]unroll.Bound
	warnings []Warning
}

func (c *checker) warnf(action, target, index, reason string, args ...interface{}) {
	c.warnings = append(c.warnings, Warning{
		Action: action,
		Target: target,
		Index:  index,
		Reason: fmt.Sprintf(reason, args...),
	})
}

// invocation checks all instance-selecting indexes of one call site.
func (c *checker) invocation(inv *lang.Invocation) {
	a := inv.Action
	loopSym := func() *lang.Symbolic {
		if l := inv.Loop(); l != nil {
			return l.Sym
		}
		return nil
	}()
	for _, r := range a.Registers {
		c.access(a.Name, r.Reg.Name, r.Reg.Count, r.Class, r.ConstIdx, loopSym, inv)
	}
	for _, m := range a.Meta {
		c.access(a.Name, m.Field.Qual(), m.Field.Count, m.Class, m.ConstIdx, loopSym, inv)
	}
	for _, m := range inv.GuardReads {
		c.access(a.Name+" (guard)", m.Field.Qual(), m.Field.Count, m.Class, m.ConstIdx, loopSym, inv)
	}
}

// access proves one instance selection in bounds, or warns.
func (c *checker) access(action, target string, extent lang.SizeExpr, class lang.IndexClass, constIdx int64, loopSym *lang.Symbolic, inv *lang.Invocation) {
	switch class {
	case lang.IdxScalar:
		return // no elastic dimension to overrun
	case lang.IdxConst:
		// Constant index: must be below the extent's guaranteed
		// minimum value.
		switch {
		case !extent.IsSymbolic():
			if constIdx >= extent.Const {
				c.warnf(action, target, fmt.Sprintf("%d", constIdx),
					"extent is %d", extent.Const)
			}
		default:
			lo := c.assume[extent.Sym].Lo
			if constIdx >= lo {
				c.warnf(action, target, fmt.Sprintf("%d", constIdx),
					"extent %s is only assumed >= %d; add `assume %s >= %d`",
					extent.Sym.Name, lo, extent.Sym.Name, constIdx+1)
			}
		}
	case lang.IdxParam:
		// Iteration-parameter index: i ranges over [0, loopSym). Safe
		// exactly when the extent is the same symbolic, a constant
		// provably >= the loop bound, or a symbolic assumed >= it.
		if loopSym == nil {
			if inv.HasConstIndex {
				c.access(action, target, extent, lang.IdxConst, inv.ConstIndex, nil, inv)
				return
			}
			c.warnf(action, target, "iteration parameter",
				"indexed call outside any elastic loop")
			return
		}
		switch {
		case extent.IsSymbolic() && extent.Sym == loopSym:
			return // i < loopSym indexes an array sized loopSym: safe
		case extent.IsSymbolic():
			// Different symbolic: safe only if extent >= loop bound is
			// implied by the assumes (extent.Lo >= loopSym.Hi).
			loopHi := c.assume[loopSym].Hi
			extLo := c.assume[extent.Sym].Lo
			if loopHi == unroll.NoUpper || extLo < loopHi {
				c.warnf(action, target, fmt.Sprintf("%s (< %s)", "iteration", loopSym.Name),
					"array sized by %s; prove %s >= %s with assume statements",
					extent.Sym.Name, extent.Sym.Name, loopSym.Name)
			}
		default:
			loopHi := c.assume[loopSym].Hi
			if loopHi == unroll.NoUpper || extent.Const < loopHi {
				c.warnf(action, target, fmt.Sprintf("iteration (< %s)", loopSym.Name),
					"array extent is the constant %d but %s may reach %s",
					extent.Const, loopSym.Name, boundText(loopHi))
			}
		}
	}
}

func boundText(hi int64) string {
	if hi == unroll.NoUpper {
		return "any value"
	}
	return fmt.Sprintf("%d", hi)
}
