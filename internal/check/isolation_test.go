package check

import (
	"strings"
	"testing"

	"p4all/internal/ilp"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/modules"
	"p4all/internal/pisa"
	"p4all/internal/unroll"
)

func jointModel(t *testing.T) (*ilpgen.Joint, []string) {
	t.Helper()
	target := pisa.Target{
		Name: "iso-test", Stages: 4, MemoryBits: 64 * 1024,
		StatefulALUs: 4, StatelessALUs: 16, PHVBits: 4096,
	}
	names := []string{"a", "b"}
	var tus []ilpgen.TenantUnit
	for _, n := range names {
		u, err := lang.ParseAndResolve(modules.StandaloneCMS())
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := unroll.UpperBounds(u, &target)
		if err != nil {
			t.Fatal(err)
		}
		tus = append(tus, ilpgen.TenantUnit{Name: n, Unit: u, Bounds: bounds})
	}
	j, err := ilpgen.GenerateJoint(tus, &target)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.SetObjective(ilpgen.Fairness{}); err != nil {
		t.Fatal(err)
	}
	return j, names
}

// TestModelIsolationCleanJoint: a model built by GenerateJoint holds
// the partition the audit demands.
func TestModelIsolationCleanJoint(t *testing.T) {
	j, names := jointModel(t)
	if vs := ModelIsolation(j.Model, names); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

// TestModelIsolationCatchesCoupling: a hand-planted cross-tenant row
// (tenant a's constraint mentioning tenant b's variable) is reported.
func TestModelIsolationCatchesCoupling(t *testing.T) {
	j, names := jointModel(t)
	m := j.Model
	var aVar, bVar ilp.Var = -1, -1
	for i := 0; i < m.NumVars(); i++ {
		switch {
		case aVar < 0 && strings.HasPrefix(m.VarName(ilp.Var(i)), "a/"):
			aVar = ilp.Var(i)
		case bVar < 0 && strings.HasPrefix(m.VarName(ilp.Var(i)), "b/"):
			bVar = ilp.Var(i)
		}
	}
	if aVar < 0 || bVar < 0 {
		t.Fatal("tenant variables not found")
	}
	e := ilp.Term(aVar, 1)
	e.Add(bVar, 1)
	m.AddConstr("a/leak", e, ilp.LE, 100)
	vs := ModelIsolation(m, names)
	if len(vs) == 0 {
		t.Fatal("cross-tenant coupling not reported")
	}
	found := false
	for _, v := range vs {
		if v.Constraint == "a/leak" && strings.HasPrefix(v.Var, "b/") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not name the planted leak", vs)
	}
}

// TestModelIsolationCatchesUnscopedRows: un-namespaced variables and
// constraints (a generator that forgot SetNamePrefix) are reported.
func TestModelIsolationCatchesUnscopedRows(t *testing.T) {
	m := ilp.NewModel("raw")
	x := m.AddInt("x", 0, 10)
	m.AddConstr("cap", ilp.Term(x, 1), ilp.LE, 5)
	vs := ModelIsolation(m, []string{"a"})
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2 (variable and constraint): %v", len(vs), vs)
	}
}

// TestModelIsolationCatchesUnknownTenant: a namespace that is not a
// declared tenant (and not "joint") is reported.
func TestModelIsolationCatchesUnknownTenant(t *testing.T) {
	m := ilp.NewModel("raw")
	m.SetNamePrefix("ghost")
	x := m.AddInt("x", 0, 10)
	m.AddConstr("cap", ilp.Term(x, 1), ilp.LE, 5)
	vs := ModelIsolation(m, []string{"a"})
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
}
