package tv

import (
	"fmt"
	"sort"

	"p4all/internal/dep"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/unroll"
)

// This file implements the resource audit: an independent re-derivation
// of the stage, memory, ALU, and PHV budgets implied by a solved layout,
// checked directly against the pisa target spec. It rebuilds the
// dependency graph from the source at the solved iteration counts and
// trusts nothing from ilpgen's constraint matrix — only the layout's
// observable outputs (placements, register placements, symbolic values).

// Check is one audited invariant.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"` // failure description
}

// Budget is one re-derived resource consumption row.
type Budget struct {
	Resource string `json:"resource"`
	Stage    int    `json:"stage"` // -1 for whole-pipeline resources
	Used     int64  `json:"used"`
	Limit    int64  `json:"limit"`
}

// AuditResult is the audit half of a certificate.
type AuditResult struct {
	Checks  []Check  `json:"checks"`
	Budgets []Budget `json:"budgets"`
}

// Failed reports whether any check failed.
func (a *AuditResult) Failed() bool {
	for _, c := range a.Checks {
		if !c.OK {
			return true
		}
	}
	return false
}

type auditor struct {
	u      *lang.Unit
	layout *ilpgen.Layout
	res    AuditResult

	counts     dep.Counts
	graph      *dep.Graph
	stageOf    map[string]int // instance name -> placed stage
	nodeStg    map[int]int    // rebuilt node id -> stage (when consistent)
	recompHf   []int64
	recompHl   []int64
	recompHash []int64
	recompMem  []int64
}

// Audit re-derives every resource budget from (unit, layout) and checks
// it against the layout's target.
func Audit(u *lang.Unit, layout *ilpgen.Layout) *AuditResult {
	a := &auditor{
		u:       u,
		layout:  layout,
		stageOf: make(map[string]int),
		nodeStg: make(map[int]int),
		counts:  dep.Counts{},
	}
	stages := layout.Target.Stages
	a.recompHf = make([]int64, stages)
	a.recompHl = make([]int64, stages)
	a.recompHash = make([]int64, stages)
	a.recompMem = make([]int64, stages)

	a.checkSymbolics()
	a.checkAssumes()
	for _, l := range u.Loops {
		a.counts[l.Sym] = int(layout.Symbolics[l.Sym.Name])
	}
	a.graph = dep.Build(u, a.counts, layout.Target)
	a.checkBijection()
	a.checkNodeStages()
	a.checkEdges()
	a.checkRegisters()
	a.checkALUs()
	a.checkMemory()
	a.checkStageUse()
	a.checkPHV()

	sort.Slice(a.res.Checks, func(i, j int) bool { return a.res.Checks[i].Name < a.res.Checks[j].Name })
	sort.Slice(a.res.Budgets, func(i, j int) bool {
		if a.res.Budgets[i].Resource != a.res.Budgets[j].Resource {
			return a.res.Budgets[i].Resource < a.res.Budgets[j].Resource
		}
		return a.res.Budgets[i].Stage < a.res.Budgets[j].Stage
	})
	return &a.res
}

// check records one invariant. Only the first failure detail per named
// check is kept (details stay bounded and deterministic).
func (a *auditor) check(name string, ok bool, detail string) {
	for i := range a.res.Checks {
		if a.res.Checks[i].Name == name {
			if !ok && a.res.Checks[i].OK {
				a.res.Checks[i].OK = false
				a.res.Checks[i].Detail = detail
			}
			return
		}
	}
	c := Check{Name: name, OK: ok}
	if !ok {
		c.Detail = detail
	}
	a.res.Checks = append(a.res.Checks, c)
}

// solved returns the concrete value of a size expression under the
// layout's assignment.
func (a *auditor) solved(s lang.SizeExpr) int64 {
	if s.IsSymbolic() {
		return a.layout.Symbolics[s.Sym.Name]
	}
	return s.Const
}

// checkSymbolics verifies every declared symbolic got a value within
// the assume-derived interval.
func (a *auditor) checkSymbolics() {
	bounds := unroll.AssumeBounds(a.u)
	ok := true
	detail := ""
	for _, sym := range a.u.Symbolics {
		v, have := a.layout.Symbolics[sym.Name]
		if !have {
			ok, detail = false, fmt.Sprintf("symbolic %s has no solved value", sym.Name)
			break
		}
		b := bounds[sym]
		if v < b.Lo || (b.Hi != unroll.NoUpper && v > b.Hi) {
			ok, detail = false, fmt.Sprintf("symbolic %s = %d outside assume interval [%d, %d]", sym.Name, v, b.Lo, b.Hi)
			break
		}
	}
	a.check("symbolic-assignment", ok, detail)
}

// checkAssumes re-evaluates every assume predicate numerically under
// the solved assignment — independently of the linearization ilpgen fed
// the solver.
func (a *auditor) checkAssumes() {
	for _, as := range a.u.Assumes {
		v, err := a.evalInt(as.Cond)
		if err != nil {
			a.check("assume-predicates", false, fmt.Sprintf("cannot evaluate %s: %v", lang.PrintExpr(as.Cond), err))
			return
		}
		if v == 0 {
			a.check("assume-predicates", false, fmt.Sprintf("assume %s is false under the solved assignment", lang.PrintExpr(as.Cond)))
			return
		}
	}
	a.check("assume-predicates", true, "")
}

// evalInt evaluates a closed integer expression over symbolic values
// and program constants (comparisons and connectives yield 0/1).
func (a *auditor) evalInt(e lang.Expr) (int64, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		return e.Value, nil
	case *lang.BoolLit:
		if e.Value {
			return 1, nil
		}
		return 0, nil
	case *lang.Unary:
		x, err := a.evalInt(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case lang.MINUS:
			return -x, nil
		case lang.NOT:
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("operator %s", e.Op)
	case *lang.Binary:
		x, err := a.evalInt(e.X)
		if err != nil {
			return 0, err
		}
		y, err := a.evalInt(e.Y)
		if err != nil {
			return 0, err
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch e.Op {
		case lang.PLUS:
			return x + y, nil
		case lang.MINUS:
			return x - y, nil
		case lang.STAR:
			return x * y, nil
		case lang.SLASH:
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		case lang.PCT:
			if y == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return x % y, nil
		case lang.LT:
			return b2i(x < y), nil
		case lang.LE:
			return b2i(x <= y), nil
		case lang.GT:
			return b2i(x > y), nil
		case lang.GE:
			return b2i(x >= y), nil
		case lang.EQ:
			return b2i(x == y), nil
		case lang.NE:
			return b2i(x != y), nil
		case lang.AND:
			return b2i(x != 0 && y != 0), nil
		case lang.OR:
			return b2i(x != 0 || y != 0), nil
		}
		return 0, fmt.Errorf("operator %s", e.Op)
	case *lang.Ref:
		if !e.IsSimpleIdent() {
			return 0, fmt.Errorf("non-scalar reference %s", lang.PrintExpr(e))
		}
		if sym := a.u.SymbolicByName(e.Base()); sym != nil {
			return a.layout.Symbolics[sym.Name], nil
		}
		if v, ok := a.u.Consts[e.Base()]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("unknown name %s", e.Base())
	}
	return 0, fmt.Errorf("expression %T", e)
}

// checkBijection verifies the placements and the instances implied by
// the solved iteration counts are in one-to-one correspondence.
func (a *auditor) checkBijection() {
	instances := dep.Enumerate(a.u, a.counts)
	want := make(map[string]bool, len(instances))
	for _, in := range instances {
		want[in.Name()] = true
	}
	ok := true
	detail := ""
	placed := make(map[string]bool, len(a.layout.Placements))
	for _, pl := range a.layout.Placements {
		if placed[pl.Name] {
			ok, detail = false, fmt.Sprintf("instance %s placed twice", pl.Name)
			break
		}
		placed[pl.Name] = true
		a.stageOf[pl.Name] = pl.Stage
		if pl.Stage < 0 || pl.Stage >= a.layout.Target.Stages {
			ok, detail = false, fmt.Sprintf("instance %s placed in nonexistent stage %d", pl.Name, pl.Stage)
			break
		}
		if !want[pl.Name] {
			ok, detail = false, fmt.Sprintf("placement %s does not correspond to any source instance at the solved counts", pl.Name)
			break
		}
	}
	if ok {
		var missing []string
		for name := range want {
			if !placed[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			ok, detail = false, fmt.Sprintf("source instance %s has no placement", missing[0])
		}
	}
	a.check("placement-bijection", ok, detail)
}

// checkNodeStages verifies every rebuilt dependency node (instances
// forced to co-locate by shared register state) occupies one stage.
func (a *auditor) checkNodeStages() {
	ok := true
	detail := ""
	for _, n := range a.graph.Nodes {
		stage := -1
		for _, in := range n.Instances {
			s, have := a.stageOf[in.Name()]
			if !have {
				continue // bijection check reports this
			}
			if stage == -1 {
				stage = s
			} else if s != stage {
				ok = false
				detail = fmt.Sprintf("instances %s must share a stage but are split across %d and %d", n.Name(), stage, s)
			}
		}
		if stage >= 0 {
			a.nodeStg[n.ID] = stage
		}
	}
	a.check("node-stage-sharing", ok, detail)
}

// checkEdges re-verifies precedence (strictly increasing stages) and
// exclusion (distinct stages) over the rebuilt graph.
func (a *auditor) checkEdges() {
	precOK, precDetail := true, ""
	for i, succ := range a.graph.Prec {
		si, haveI := a.nodeStg[i]
		for _, j := range succ {
			sj, haveJ := a.nodeStg[j]
			if !haveI || !haveJ {
				continue
			}
			if si >= sj {
				precOK = false
				precDetail = fmt.Sprintf("%s (stage %d) must precede %s (stage %d)",
					a.graph.Nodes[i].Name(), si, a.graph.Nodes[j].Name(), sj)
			}
		}
	}
	a.check("precedence", precOK, precDetail)

	exclOK, exclDetail := true, ""
	for i, ex := range a.graph.Excl {
		si, haveI := a.nodeStg[i]
		for _, j := range ex {
			if j <= i {
				continue
			}
			sj, haveJ := a.nodeStg[j]
			if !haveI || !haveJ {
				continue
			}
			if si == sj {
				exclOK = false
				exclDetail = fmt.Sprintf("%s and %s must not share stage %d",
					a.graph.Nodes[i].Name(), a.graph.Nodes[j].Name(), si)
			}
		}
	}
	a.check("exclusion", exclOK, exclDetail)
}

// checkRegisters verifies every register placement's shape: instance
// index within the solved extent, cells matching the solved size, bits
// summing to cells×width, stage occupancy legal for the target, and
// co-location with the dependency node that accesses the instance.
func (a *auditor) checkRegisters() {
	ok := true
	detail := ""
	fail := func(f string, args ...interface{}) {
		if ok {
			ok = false
			detail = fmt.Sprintf(f, args...)
		}
	}
	t := a.layout.Target
	for _, rp := range a.layout.Registers {
		reg := a.u.RegisterByName(rp.Register)
		if reg == nil {
			fail("placed register %s is not declared", rp.Register)
			continue
		}
		count := a.solved(reg.Count)
		if int64(rp.Index) < 0 || int64(rp.Index) >= count {
			fail("register %s/%d outside the solved extent %d", rp.Register, rp.Index, count)
		}
		if rp.Width != reg.Width {
			fail("register %s/%d emitted with width %d, declared %d", rp.Register, rp.Index, rp.Width, reg.Width)
		}
		wantCells := a.solved(reg.Cells)
		if rp.Cells != wantCells {
			fail("register %s/%d has %d cells, solved size is %d", rp.Register, rp.Index, rp.Cells, wantCells)
		}
		var total int64
		for _, s := range rp.Stages {
			if s < 0 || s >= t.Stages {
				fail("register %s/%d allocated in nonexistent stage %d", rp.Register, rp.Index, s)
				continue
			}
			total += rp.Bits[s]
		}
		if total != rp.Cells*int64(rp.Width) {
			fail("register %s/%d allocates %d bits for %d cells of width %d", rp.Register, rp.Index, total, rp.Cells, rp.Width)
		}
		if len(rp.Stages) > 1 {
			if !t.AllowRegisterSpread {
				fail("register %s/%d spans %d stages but the target forbids spreading", rp.Register, rp.Index, len(rp.Stages))
			}
			for i := 1; i < len(rp.Stages); i++ {
				if rp.Stages[i] != rp.Stages[i-1]+1 {
					fail("register %s/%d spans non-consecutive stages %v", rp.Register, rp.Index, rp.Stages)
				}
			}
		}
		// Co-location: the node hosting the accesses must sit where the
		// memory is. Without spreading that stage is unique; with
		// spreading the node's recorded stage is its first copy, which
		// must be one of the occupied stages.
		if nid, have := a.graph.RegNodes[dep.RegInstance{Name: rp.Register, Index: rp.Index}]; have {
			if ns, placed := a.nodeStg[nid]; placed && len(rp.Stages) > 0 {
				if !t.AllowRegisterSpread {
					if len(rp.Stages) != 1 || rp.Stages[0] != ns {
						fail("register %s/%d lives in stages %v but its actions run in stage %d", rp.Register, rp.Index, rp.Stages, ns)
					}
				} else {
					found := false
					for _, s := range rp.Stages {
						if s == ns {
							found = true
						}
					}
					if !found {
						fail("register %s/%d spread over %v excludes its actions' stage %d", rp.Register, rp.Index, rp.Stages, ns)
					}
				}
			}
		}
	}
	a.check("register-shape", ok, detail)
}

// checkALUs recomputes per-stage ALU demand from the rebuilt graph and
// checks it against the target's F/L/hash-unit limits.
func (a *auditor) checkALUs() {
	t := a.layout.Target
	for _, n := range a.graph.Nodes {
		s, have := a.nodeStg[n.ID]
		if !have {
			continue
		}
		a.recompHf[s] += int64(n.Hf)
		a.recompHl[s] += int64(n.Hl)
		a.recompHash[s] += int64(n.Hashes)
	}
	ok := true
	detail := ""
	for s := 0; s < t.Stages; s++ {
		if a.recompHf[s] > 0 || a.recompHl[s] > 0 {
			a.res.Budgets = append(a.res.Budgets,
				Budget{Resource: "stateful-alus", Stage: s, Used: a.recompHf[s], Limit: int64(t.StatefulALUs)},
				Budget{Resource: "stateless-alus", Stage: s, Used: a.recompHl[s], Limit: int64(t.StatelessALUs)})
		}
		if a.recompHash[s] > 0 && t.HashUnits > 0 {
			a.res.Budgets = append(a.res.Budgets,
				Budget{Resource: "hash-units", Stage: s, Used: a.recompHash[s], Limit: int64(t.HashUnits)})
		}
		if a.recompHf[s] > int64(t.StatefulALUs) {
			ok = false
			detail = fmt.Sprintf("stage %d needs %d stateful ALUs of %d", s, a.recompHf[s], t.StatefulALUs)
		}
		if a.recompHl[s] > int64(t.StatelessALUs) {
			ok = false
			detail = fmt.Sprintf("stage %d needs %d stateless ALUs of %d", s, a.recompHl[s], t.StatelessALUs)
		}
		if t.HashUnits > 0 && a.recompHash[s] > int64(t.HashUnits) {
			ok = false
			detail = fmt.Sprintf("stage %d needs %d hash units of %d", s, a.recompHash[s], t.HashUnits)
		}
	}
	a.check("alu-budget", ok, detail)
}

// checkMemory recomputes per-stage memory from the register placements
// and checks it against the target's per-stage SRAM.
func (a *auditor) checkMemory() {
	t := a.layout.Target
	for _, rp := range a.layout.Registers {
		for s, bits := range rp.Bits {
			if s >= 0 && s < t.Stages {
				a.recompMem[s] += bits
			}
		}
	}
	ok := true
	detail := ""
	for s := 0; s < t.Stages; s++ {
		if a.recompMem[s] > 0 {
			a.res.Budgets = append(a.res.Budgets,
				Budget{Resource: "memory-bits", Stage: s, Used: a.recompMem[s], Limit: int64(t.MemoryBits)})
		}
		if a.recompMem[s] > int64(t.MemoryBits) {
			ok = false
			detail = fmt.Sprintf("stage %d needs %d memory bits of %d", s, a.recompMem[s], t.MemoryBits)
		}
	}
	a.check("memory-budget", ok, detail)
}

// checkStageUse verifies the layout's reported per-stage usage matches
// the recomputation (spreading may legitimately place extra ALU copies
// the placements don't record, so the recomputed value is then a lower
// bound rather than an equality).
func (a *auditor) checkStageUse() {
	t := a.layout.Target
	ok := true
	detail := ""
	if len(a.layout.Stages) != t.Stages {
		a.check("stage-use-consistency", false,
			fmt.Sprintf("layout reports %d stages, target has %d", len(a.layout.Stages), t.Stages))
		return
	}
	for s, use := range a.layout.Stages {
		bad := func(what string, recomputed, reported int64) {
			ok = false
			detail = fmt.Sprintf("stage %d %s: recomputed %d, layout reports %d", s, what, recomputed, reported)
		}
		if t.AllowRegisterSpread {
			if a.recompHf[s] > int64(use.Hf) {
				bad("stateful ALUs", a.recompHf[s], int64(use.Hf))
			}
			if a.recompHl[s] > int64(use.Hl) {
				bad("stateless ALUs", a.recompHl[s], int64(use.Hl))
			}
			if a.recompHash[s] > int64(use.Hashes) {
				bad("hash units", a.recompHash[s], int64(use.Hashes))
			}
		} else {
			if a.recompHf[s] != int64(use.Hf) {
				bad("stateful ALUs", a.recompHf[s], int64(use.Hf))
			}
			if a.recompHl[s] != int64(use.Hl) {
				bad("stateless ALUs", a.recompHl[s], int64(use.Hl))
			}
			if a.recompHash[s] != int64(use.Hashes) {
				bad("hash units", a.recompHash[s], int64(use.Hashes))
			}
		}
		if a.recompMem[s] != use.MemoryBits {
			bad("memory bits", a.recompMem[s], use.MemoryBits)
		}
	}
	a.check("stage-use-consistency", ok, detail)
}

// checkPHV re-derives the elastic PHV demand from the solved field
// extents (constraint #13, recomputed from the program, not the matrix).
func (a *auditor) checkPHV() {
	t := a.layout.Target
	var used int64
	for _, f := range a.u.ElasticFields() {
		used += int64(f.Width) * a.layout.Symbolics[f.Count.Sym.Name]
	}
	limit := int64(t.ElasticPHVBits() - a.u.FixedPHVBits())
	a.res.Budgets = append(a.res.Budgets, Budget{Resource: "elastic-phv-bits", Stage: -1, Used: used, Limit: limit})
	ok := used <= limit
	detail := ""
	if !ok {
		detail = fmt.Sprintf("elastic fields need %d PHV bits, %d available after fixed headers", used, limit)
	}
	a.check("phv-budget", ok, detail)
}
