package tv

import (
	"fmt"
	"sync"
	"testing"

	"p4all/internal/codegen"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/modules"
	"p4all/internal/pisa"
)

// FuzzCertify compiles library-module programs over a quantized
// configuration space (module kind, element width, hash seed, memory
// budget) and demands every solved compile certify proved. Compiles are
// cached per configuration so the fuzz engine's per-input hang detector
// only ever sees the cheap validation; the config space is small enough
// (a few dozen entries) that the cache stays bounded.

type fuzzCompiled struct {
	u      *lang.Unit
	layout *ilpgen.Layout
	prog   *codegen.Concrete
}

var fuzzCache struct {
	sync.Mutex
	byKey map[string]*fuzzCompiled
}

func fuzzCompile(t *testing.T, key, src string, target pisa.Target) *fuzzCompiled {
	t.Helper()
	fuzzCache.Lock()
	defer fuzzCache.Unlock()
	if fuzzCache.byKey == nil {
		fuzzCache.byKey = make(map[string]*fuzzCompiled)
	}
	if c, ok := fuzzCache.byKey[key]; ok {
		return c
	}
	u, layout, prog := compileFor(t, src, target)
	c := &fuzzCompiled{u: u, layout: layout, prog: prog}
	fuzzCache.byKey[key] = c
	return c
}

func FuzzCertify(f *testing.F) {
	f.Add(byte(0), byte(0), byte(0), byte(0))
	f.Add(byte(1), byte(1), byte(2), byte(1))
	f.Add(byte(0), byte(2), byte(3), byte(1))
	f.Add(byte(1), byte(0), byte(1), byte(0))
	f.Fuzz(func(t *testing.T, kind, widthSel, seedSel, memSel byte) {
		widths := []int{8, 16, 32}
		mems := []int{pisa.Mb / 4, pisa.Mb / 2}
		in := modules.Instance{
			Prefix: "fz",
			Key:    "pkt.flow",
			Width:  widths[int(widthSel)%len(widths)],
			Seed:   int(seedSel) % 4,
		}
		var src string
		switch int(kind) % 2 {
		case 0:
			src = modules.Standalone(modules.CountMinSketch(in), "fz_update", "fz_rows * fz_cols")
		case 1:
			src = modules.Standalone(modules.BloomFilter(in), "fz_check", "fz_rows * fz_bits")
		}
		mem := mems[int(memSel)%len(mems)]
		key := fmt.Sprintf("%d/%d/%d/%d", int(kind)%2, in.Width, in.Seed, mem)
		c := fuzzCompile(t, key, src, pisa.EvalTarget(mem))
		cert := Validate(c.u, c.layout, c.prog, Options{Name: key})
		if !cert.Proved() {
			t.Fatalf("config %s failed to certify: %s\nobligations: %+v",
				key, cert.Summary(), cert.Equivalence.Obligations)
		}
	})
}
