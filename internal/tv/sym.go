package tv

import (
	"fmt"
	"math/bits"
	"strings"

	"p4all/internal/lang"
)

// This file implements the symbolic value domain: a hash-consed
// expression DAG over 64-bit values with the exact wrap semantics of
// the reference interpreter (internal/sim). Nodes are interned, so
// structural equality is pointer equality — the source-side and
// target-side evaluations share one table, and an equivalence
// obligation discharges exactly when both sides reach the same node.
//
// Register state is modeled as McCarthy arrays: an opaque initial
// array per register instance, functional stores, and selects that
// resolve through the store chain when indices are syntactically equal
// or provably distinct constants.

type nodeKind uint8

const (
	kConst  nodeKind = iota // concrete 64-bit value
	kIn                     // packet input variable (raw, unconstrained)
	kMask                   // X truncated to `width` bits
	kUn                     // unary MINUS / NOT
	kBin                    // binary arithmetic or comparison
	kCall                   // hash/min/max builtin
	kArrial                 // initial register array contents
	kStore                  // functional array store (arr, idx, val)
	kSelect                 // array read (arr, idx), width = register width
)

// node is one interned symbolic value. lo/hi is a sound unsigned
// interval for every concrete instantiation of the node, used to
// discharge branch conditions without forking ("interval pruning").
type node struct {
	id    int
	kind  nodeKind
	op    lang.Kind // kUn, kBin
	name  string    // kIn variable, kCall builtin, kArrial "reg/inst"
	val   uint64    // kConst
	width int       // kMask truncation width, kSelect register width
	args  []*node
	lo    uint64
	hi    uint64
}

func (n *node) isConst() bool { return n.kind == kConst }

// symtab interns nodes.
type symtab struct {
	nodes map[string]*node
	seq   int
}

func newSymtab() *symtab {
	return &symtab{nodes: make(map[string]*node, 256)}
}

func (t *symtab) intern(n *node) *node {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%s|%d|%d", n.kind, n.op, n.name, n.val, n.width)
	for _, a := range n.args {
		fmt.Fprintf(&b, "|%d", a.id)
	}
	key := b.String()
	if have, ok := t.nodes[key]; ok {
		return have
	}
	n.id = t.seq
	t.seq++
	n.lo, n.hi = interval(n)
	t.nodes[key] = n
	return n
}

func (t *symtab) constant(v uint64) *node {
	return t.intern(&node{kind: kConst, val: v})
}

func (t *symtab) boolConst(b bool) *node {
	if b {
		return t.constant(1)
	}
	return t.constant(0)
}

// in returns the packet input variable for a header key.
func (t *symtab) in(name string) *node {
	return t.intern(&node{kind: kIn, name: name})
}

// widthMask and maskTo mirror internal/sim exactly.
func widthMask(bits int) uint64 {
	if bits <= 0 || bits >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(bits)) - 1
}

func maskTo(v uint64, bits int) uint64 {
	return v & widthMask(bits)
}

func combineWidth(a, b int) int {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if a > b {
		return a
	}
	return b
}

// mask truncates x to w bits. The node is elided when the value
// provably fits (interval inside the mask), which keeps equal values
// on the two sides syntactically equal regardless of how many
// redundant masks each applied.
func (t *symtab) mask(x *node, w int) *node {
	if w <= 0 || w >= 64 {
		return x
	}
	if x.isConst() {
		return t.constant(maskTo(x.val, w))
	}
	if x.hi <= widthMask(w) {
		return x
	}
	return t.intern(&node{kind: kMask, width: w, args: []*node{x}})
}

// neg is the unary MINUS before masking.
func (t *symtab) neg(x *node) *node {
	if x.isConst() {
		return t.constant(-x.val)
	}
	return t.intern(&node{kind: kUn, op: lang.MINUS, args: []*node{x}})
}

// not is the boolean negation (yields 0/1).
func (t *symtab) not(x *node) *node {
	if x.isConst() {
		return t.boolConst(x.val == 0)
	}
	if x.lo >= 1 {
		return t.constant(0)
	}
	if x.hi == 0 {
		return t.constant(1)
	}
	return t.intern(&node{kind: kUn, op: lang.NOT, args: []*node{x}})
}

// bin builds a raw (unmasked) binary node. The caller must rule out
// zero divisors first and apply mask() for the wrapping operators.
func (t *symtab) bin(op lang.Kind, x, y *node) *node {
	if x.isConst() && y.isConst() {
		switch op {
		case lang.PLUS:
			return t.constant(x.val + y.val)
		case lang.MINUS:
			return t.constant(x.val - y.val)
		case lang.STAR:
			return t.constant(x.val * y.val)
		case lang.SLASH:
			return t.constant(x.val / y.val)
		case lang.PCT:
			return t.constant(x.val % y.val)
		case lang.LT:
			return t.boolConst(x.val < y.val)
		case lang.LE:
			return t.boolConst(x.val <= y.val)
		case lang.GT:
			return t.boolConst(x.val > y.val)
		case lang.GE:
			return t.boolConst(x.val >= y.val)
		case lang.EQ:
			return t.boolConst(x.val == y.val)
		case lang.NE:
			return t.boolConst(x.val != y.val)
		}
	}
	n := t.intern(&node{kind: kBin, op: op, args: []*node{x, y}})
	// Comparisons may still fold through the operand intervals.
	if n.lo == n.hi {
		return t.constant(n.lo)
	}
	return n
}

// boolish converts a value to the 0/1 the interpreter's boolean
// connectives produce once the short-circuit operand is decided.
func (t *symtab) boolish(x *node) *node {
	if x.isConst() {
		return t.boolConst(x.val != 0)
	}
	if x.hi <= 1 {
		return x
	}
	return t.bin(lang.NE, x, t.constant(0))
}

// call builds a builtin call node (hash/min/max with two arguments).
func (t *symtab) call(name string, x, y *node) *node {
	if x.isConst() && y.isConst() {
		switch name {
		case "hash":
			return t.constant(hashUint(x.val, y.val))
		case "min":
			if x.val < y.val {
				return t.constant(x.val)
			}
			return t.constant(y.val)
		case "max":
			if x.val > y.val {
				return t.constant(x.val)
			}
			return t.constant(y.val)
		}
	}
	return t.intern(&node{kind: kCall, name: name, args: []*node{x, y}})
}

// arrInit is the opaque initial contents of one register instance.
func (t *symtab) arrInit(reg string, inst int64) *node {
	return t.intern(&node{kind: kArrial, name: fmt.Sprintf("%s/%d", reg, inst)})
}

// store is a functional array update.
func (t *symtab) store(arr, idx, val *node) *node {
	return t.intern(&node{kind: kStore, args: []*node{arr, idx, val}})
}

// sel reads a cell, resolving through the store chain: an identical
// index hits the stored value; provably distinct constant indices are
// skipped; anything else leaves a symbolic select over the remaining
// chain. width is the register element width (cells hold masked
// values, which bounds the result interval).
func (t *symtab) sel(arr, idx *node, width int) *node {
	a := arr
	for {
		if a.kind != kStore {
			break
		}
		sIdx, sVal := a.args[1], a.args[2]
		if sIdx == idx {
			return sVal
		}
		if sIdx.isConst() && idx.isConst() && sIdx.val != idx.val {
			a = a.args[0]
			continue
		}
		break
	}
	return t.intern(&node{kind: kSelect, width: width, args: []*node{a, idx}})
}

// wrapCell applies the simulator's cell wrap (cell % len(store)) —
// elided when the index provably fits, so both sides canonicalize the
// common in-range case identically.
func (t *symtab) wrapCell(cell *node, cells int64) *node {
	if cells <= 0 {
		return cell
	}
	if cell.isConst() {
		if cell.val >= uint64(cells) {
			return t.constant(cell.val % uint64(cells))
		}
		return cell
	}
	if cell.hi < uint64(cells) {
		return cell
	}
	return t.bin(lang.PCT, cell, t.constant(uint64(cells)))
}

// interval computes a sound unsigned range for a node's value. It is
// evaluated once at intern time (children are already interned).
func interval(n *node) (uint64, uint64) {
	full := func() (uint64, uint64) { return 0, ^uint64(0) }
	switch n.kind {
	case kConst:
		return n.val, n.val
	case kIn, kArrial, kStore:
		return full()
	case kMask:
		x := n.args[0]
		m := widthMask(n.width)
		if x.hi <= m {
			return x.lo, x.hi
		}
		return 0, m
	case kSelect:
		// Cells only ever hold width-masked values: writes mask, and
		// snapshot restore preserves shapes from a pipeline that
		// masked. See docs/TRANSLATION_VALIDATION.md for the caveat on
		// externally seeded out-of-width state.
		return 0, widthMask(n.width)
	case kUn:
		if n.op == lang.NOT {
			return 0, 1
		}
		return full()
	case kCall:
		x, y := n.args[0], n.args[1]
		switch n.name {
		case "min":
			return umin(x.lo, y.lo), umin(x.hi, y.hi)
		case "max":
			return umax(x.lo, y.lo), umax(x.hi, y.hi)
		}
		return full()
	case kBin:
		x, y := n.args[0], n.args[1]
		switch n.op {
		case lang.PLUS:
			lo, c1 := bits.Add64(x.lo, y.lo, 0)
			hi, c2 := bits.Add64(x.hi, y.hi, 0)
			if c1 != 0 || c2 != 0 {
				return full()
			}
			return lo, hi
		case lang.MINUS:
			if x.lo >= y.hi {
				return x.lo - y.hi, x.hi - y.lo
			}
			return full()
		case lang.STAR:
			h1, lo := bits.Mul64(x.lo, y.lo)
			h2, hi := bits.Mul64(x.hi, y.hi)
			if h1 != 0 || h2 != 0 {
				return full()
			}
			return lo, hi
		case lang.SLASH:
			if y.lo == 0 {
				return 0, x.hi
			}
			return x.lo / y.hi, x.hi / y.lo
		case lang.PCT:
			if y.hi == 0 {
				return full()
			}
			hi := y.hi - 1
			if x.hi < hi {
				hi = x.hi
			}
			return 0, hi
		case lang.LT:
			return cmpInterval(x.hi < y.lo, x.lo >= y.hi)
		case lang.LE:
			return cmpInterval(x.hi <= y.lo, x.lo > y.hi)
		case lang.GT:
			return cmpInterval(x.lo > y.hi, x.hi <= y.lo)
		case lang.GE:
			return cmpInterval(x.lo >= y.hi, x.hi < y.lo)
		case lang.EQ:
			return cmpInterval(x.lo == x.hi && y.lo == y.hi && x.lo == y.lo, x.hi < y.lo || y.hi < x.lo)
		case lang.NE:
			return cmpInterval(x.hi < y.lo || y.hi < x.lo, x.lo == x.hi && y.lo == y.hi && x.lo == y.lo)
		}
		return full()
	}
	return full()
}

// cmpInterval maps "provably true"/"provably false" to a 0/1 range.
func cmpInterval(alwaysTrue, alwaysFalse bool) (uint64, uint64) {
	switch {
	case alwaysTrue:
		return 1, 1
	case alwaysFalse:
		return 0, 0
	default:
		return 0, 1
	}
}

func umin(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func umax(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// hashUint mirrors internal/structures' deterministic hash (the same
// function internal/sim executes), so constant folding agrees with the
// interpreter bit for bit.
func hashUint(key uint64, row uint64) uint64 {
	x := key + (row+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fnv1a hashes a string for the deterministic concrete-search input
// derivation.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// nodeString renders a node for failure details (bounded depth).
func nodeString(n *node, depth int) string {
	if n == nil {
		return "?"
	}
	if depth <= 0 {
		return "..."
	}
	switch n.kind {
	case kConst:
		return fmt.Sprintf("%d", n.val)
	case kIn:
		return "in(" + n.name + ")"
	case kMask:
		return fmt.Sprintf("mask%d(%s)", n.width, nodeString(n.args[0], depth-1))
	case kUn:
		return lang.KindText(n.op) + nodeString(n.args[0], depth-1)
	case kBin:
		return fmt.Sprintf("(%s %s %s)", nodeString(n.args[0], depth-1), lang.KindText(n.op), nodeString(n.args[1], depth-1))
	case kCall:
		return fmt.Sprintf("%s(%s, %s)", n.name, nodeString(n.args[0], depth-1), nodeString(n.args[1], depth-1))
	case kArrial:
		return "init(" + n.name + ")"
	case kStore:
		return fmt.Sprintf("store(%s, %s, %s)", nodeString(n.args[0], depth-1), nodeString(n.args[1], depth-1), nodeString(n.args[2], depth-1))
	case kSelect:
		return fmt.Sprintf("sel(%s, %s)", nodeString(n.args[0], depth-1), nodeString(n.args[1], depth-1))
	}
	return "?"
}
