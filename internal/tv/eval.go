package tv

import (
	"fmt"
	"sort"

	"p4all/internal/codegen"
	"p4all/internal/dep"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
)

// This file implements the equivalence half of the validator: a
// bounded symbolic execution of (a) the elastic source under the solved
// symbolic assignment and (b) the emitted concrete program — both over
// a shared symbolic packet and register file, both walking the layout's
// canonical schedule: placed instances in (stage, program order of the
// action's first invocation, iteration) order, exactly the step list
// internal/sim executes. The source side takes guards and bodies from
// the AST; the target side takes guards from the apply block and bodies
// from the emitted actions, with the apply block reconciled against the
// schedule entry by entry at setup (a dropped or reordered apply step
// is an obligation before any path runs). The legality of the schedule
// itself — that the solver's reordering of the program respects every
// dependency — is the audit's job (Prec/Excl re-derivation).
//
// Per path it discharges header-output, metadata-output,
// register-state, Stats-counter, and abort-behavior equivalence. The
// semantics mirrored are exactly those of the reference interpreter in
// internal/sim: (value, width) evaluation with width-combining wrap,
// short-circuit booleans, div/mod-by-zero aborts, register cell wrap at
// the instance extent, and per-stage ALU charging.

// sv is a symbolic value with the bit width it wraps at — the symbolic
// analogue of the interpreter's exprW result.
type sv struct {
	n *node
	w int
}

// regKey identifies one register array instance.
type regKey struct {
	name string
	inst int64
}

// pathState is the mutable per-packet state of one execution side.
type pathState struct {
	hdr       map[string]*node // written header fields (reads default to packet inputs)
	meta      map[string]*node // written metadata fields (reads default to 0)
	regs      map[regKey]*node // array values for written register instances
	regReads  uint64
	regWrites uint64
	alu       []uint64
	aborted   string // abort reason; empty while running
}

func newPathState(stages int) *pathState {
	return &pathState{
		hdr:  make(map[string]*node),
		meta: make(map[string]*node),
		regs: make(map[regKey]*node),
		alu:  make([]uint64, stages),
	}
}

// abortErr carries the interpreter-visible abort reason (packet
// processing error). Both sides must abort with the same reason at the
// same observable state to stay equivalent.
type abortErr struct{ reason string }

func (e *abortErr) Error() string { return e.reason }

// obligErr is a residual proof obligation: something the symbolic
// evaluator cannot discharge. Obligations are never silently passed —
// they trigger concrete counterexample search and a failed verdict.
type obligErr struct {
	kind   string
	detail string
}

func (e *obligErr) Error() string { return e.kind + ": " + e.detail }

// failure is one reportable reason the equivalence proof did not go
// through.
type failure struct {
	Kind   string
	Detail string
}

// tvStep is one slot of the canonical execution schedule, shared by the
// source and target walks.
type tvStep struct {
	inv     *lang.Invocation
	iter    int
	stage   int
	caction *codegen.CAction // emitted body (nil: missing from the program)
	// hasApply marks steps with their own apply-block entry; guards are
	// that entry's conditions. Table-dispatched actions have no apply
	// entry — the target replays the invocation guards for them.
	hasApply bool
	guards   []codegen.CExpr
}

// machine drives the two-sided symbolic execution.
type machine struct {
	t      *symtab
	u      *lang.Unit
	layout *ilpgen.Layout
	prog   *codegen.Concrete

	steps    []tvStep
	actions  map[string]*codegen.CAction
	regCells map[regKey]int64

	// Path enumeration: free decisions are made depth-first (true
	// first); script replays a prefix with the deepest unexplored
	// branch flipped.
	assign    map[*node]bool
	script    []bool
	taken     []bool
	decisions int
	pruned    int
	paths     int

	pathBudget     int
	decisionBudget int

	// Concrete mode: packet inputs bound to per-trial constants and
	// initial register cells to zero, turning both executions into
	// straight-line constant folding.
	concrete bool
	trial    uint64
}

func newMachine(u *lang.Unit, layout *ilpgen.Layout, prog *codegen.Concrete, pathBudget, decisionBudget int) (*machine, *failure) {
	m := &machine{
		t:              newSymtab(),
		u:              u,
		layout:         layout,
		prog:           prog,
		actions:        make(map[string]*codegen.CAction, len(prog.Actions)),
		regCells:       make(map[regKey]int64, len(prog.Actions)),
		pathBudget:     pathBudget,
		decisionBudget: decisionBudget,
	}
	counts := dep.Counts{}
	for _, l := range u.Loops {
		counts[l.Sym] = int(layout.Symbolics[l.Sym.Name])
	}
	placed := make(map[string]bool, len(layout.Placements))
	for _, pl := range layout.Placements {
		placed[pl.Name] = true
	}
	instances := dep.Enumerate(u, counts)
	seen := make(map[string]bool, len(instances))
	for _, in := range instances {
		name := in.Name()
		if seen[name] {
			return nil, &failure{Kind: "unsupported", Detail: fmt.Sprintf("duplicate instance name %s (repeated invocation of one action)", name)}
		}
		seen[name] = true
		a := in.Inv.Action
		if a.Decl != nil && a.Decl.Body != nil && !placed[name] {
			return nil, &failure{Kind: "instance-unplaced", Detail: fmt.Sprintf("instance %s required by the assignment has no placement", name)}
		}
	}
	for i := range prog.Actions {
		m.actions[prog.Actions[i].Name] = &prog.Actions[i]
	}
	for _, rp := range layout.Registers {
		m.regCells[regKey{rp.Register, int64(rp.Index)}] = rp.Cells
	}
	if f := m.buildSteps(); f != nil {
		return nil, f
	}
	return m, nil
}

// buildSteps assembles the canonical schedule from the layout —
// placements sorted exactly as the interpreter sorts its step list —
// and reconciles the emitted apply block against it in lockstep: every
// table match and every directly-invoked action must appear at its
// scheduled position and stage, table-dispatched actions must be
// absent, and nothing may trail. A dropped, reordered, or restaged
// apply step is therefore an obligation before any path runs.
func (m *machine) buildSteps() *failure {
	invByAction := make(map[string]*lang.Invocation, len(m.u.Invocations))
	for _, inv := range m.u.Invocations {
		if _, dup := invByAction[inv.Action.Name]; !dup {
			invByAction[inv.Action.Name] = inv
		}
	}
	tableOfMatch := make(map[string]*lang.TableInfo, len(m.u.Tables))
	tableActions := make(map[string]bool)
	for _, tbl := range m.u.Tables {
		tableOfMatch[tbl.Match.Name] = tbl
		for _, a := range tbl.Actions {
			tableActions[a.Name] = true
		}
	}
	order := append([]ilpgen.Placement(nil), m.layout.Placements...)
	codegen.SortPlacements(order, m.u)
	applyIdx := 0
	for _, pl := range order {
		if tbl, ok := tableOfMatch[pl.Action]; ok {
			if f := m.expectApply(applyIdx, tbl.Name, "", pl.Stage); f != nil {
				return f
			}
			applyIdx++
			continue
		}
		inv, ok := invByAction[pl.Action]
		if !ok || inv.Action.Decl == nil || inv.Action.Decl.Body == nil {
			continue
		}
		name := codegen.InstanceName(pl.Action, pl.Iter)
		s := tvStep{inv: inv, iter: pl.Iter, stage: pl.Stage, caction: m.actions[name]}
		if !tableActions[pl.Action] {
			if f := m.expectApply(applyIdx, "", name, pl.Stage); f != nil {
				return f
			}
			s.hasApply = true
			s.guards = m.prog.Apply[applyIdx].Guards
			applyIdx++
		}
		m.steps = append(m.steps, s)
	}
	if applyIdx != len(m.prog.Apply) {
		extra := m.prog.Apply[applyIdx]
		return &failure{Kind: "apply-mismatch", Detail: fmt.Sprintf("apply step %d: %s not in the layout schedule", applyIdx, applyStepName(extra))}
	}
	return nil
}

// expectApply checks that apply entry i is the scheduled table or
// action at the scheduled stage.
func (m *machine) expectApply(i int, table, action string, stage int) *failure {
	want := codegen.CApplyStep{Table: table, Action: action, Stage: stage}
	if i >= len(m.prog.Apply) {
		return &failure{Kind: "apply-mismatch", Detail: fmt.Sprintf("apply step %d: expected %s at stage %d, apply block ends early", i, applyStepName(want), stage)}
	}
	got := m.prog.Apply[i]
	if got.Table != table || got.Action != action || got.Stage != stage {
		return &failure{Kind: "apply-mismatch", Detail: fmt.Sprintf("apply step %d: expected %s at stage %d, found %s at stage %d", i, applyStepName(want), stage, applyStepName(got), got.Stage)}
	}
	return nil
}

func applyStepName(s codegen.CApplyStep) string {
	if s.Table != "" {
		return "table " + s.Table
	}
	return "action " + s.Action
}

// key flattens an elastic field instance to its simulator storage key.
func key(qual string, idx uint64) string {
	return fmt.Sprintf("%s@%d", qual, idx)
}

// inVar is the packet input for a header key: a free symbolic variable
// normally, a deterministic per-trial constant in concrete mode.
func (m *machine) inVar(k string) *node {
	if m.concrete {
		return m.t.constant(hashUint(fnv1a(k), m.trial))
	}
	return m.t.in(k)
}

// decide resolves a branch condition ("is this value nonzero?").
// Constant and interval-decided conditions never fork. On the source
// side an undetermined condition becomes a free decision (scripted by
// the DFS); on the target side it must already be determined by the
// source path's decisions, otherwise the branch alignment is a
// residual obligation.
func (m *machine) decide(n *node, src bool) (bool, error) {
	if n.isConst() {
		return n.val != 0, nil
	}
	if n.lo >= 1 {
		m.pruned++
		return true, nil
	}
	if n.hi == 0 {
		m.pruned++
		return false, nil
	}
	if v, ok := m.assign[n]; ok {
		return v, nil
	}
	if !src {
		return false, &obligErr{kind: "unaligned-branch", detail: "emitted program branches on a condition the source never decided: " + nodeString(n, 4)}
	}
	var v bool
	if len(m.taken) < len(m.script) {
		v = m.script[len(m.taken)]
	} else {
		v = true
		m.decisions++
		if m.decisions > m.decisionBudget {
			return false, &obligErr{kind: "decision-budget", detail: fmt.Sprintf("more than %d branch decisions", m.decisionBudget)}
		}
	}
	m.taken = append(m.taken, v)
	m.assign[n] = v
	return v, nil
}

// evalCtx evaluates expressions for one action instance on one side.
type evalCtx struct {
	m       *machine
	st      *pathState
	src     bool
	action  *lang.Action // source side only
	iter    int
	loopVar string
	stage   int
}

// charge mirrors the interpreter's per-stage ALU accounting.
func (ev *evalCtx) charge() {
	if ev.stage >= 0 && ev.stage < len(ev.st.alu) {
		ev.st.alu[ev.stage]++
	}
}

func (ev *evalCtx) regArr(k regKey) *node {
	if a, ok := ev.st.regs[k]; ok {
		return a
	}
	return ev.m.t.arrInit(k.name, k.inst)
}

// regRead mirrors the interpreter's register load: unmaterialized
// instances read as zero without a stats charge; materialized reads
// wrap the cell index at the extent and count one RegRead.
func (ev *evalCtx) regRead(name string, inst int64, cell *node, width int) sv {
	k := regKey{name, inst}
	cells, ok := ev.m.regCells[k]
	if !ok {
		return sv{ev.m.t.constant(0), width}
	}
	c := ev.m.t.wrapCell(cell, cells)
	v := ev.m.t.sel(ev.regArr(k), c, width)
	if ev.m.concrete && v.kind == kSelect {
		v = ev.m.t.constant(0) // fresh pipeline: cells start at zero
	}
	ev.st.regReads++
	return sv{v, width}
}

// regWrite mirrors the interpreter's register store: a no-op on
// unmaterialized instances, otherwise a width-masked functional store
// and one RegWrite.
func (ev *evalCtx) regWrite(name string, inst int64, cell *node, val *node, width int) {
	k := regKey{name, inst}
	cells, ok := ev.m.regCells[k]
	if !ok {
		return
	}
	c := ev.m.t.wrapCell(cell, cells)
	ev.st.regs[k] = ev.m.t.store(ev.regArr(k), c, ev.m.t.mask(val, width))
	ev.st.regWrites++
}

func (ev *evalCtx) hdrRead(k string, width int) sv {
	n, ok := ev.st.hdr[k]
	if !ok {
		n = ev.m.inVar(k)
	}
	return sv{ev.m.t.mask(n, width), width}
}

func (ev *evalCtx) metaRead(k string, width int) sv {
	n, ok := ev.st.meta[k]
	if !ok {
		n = ev.m.t.constant(0)
	}
	return sv{n, width}
}

// binary evaluates a binary operator over already-evaluated operands
// following exprW: short-circuiting is handled by the callers (they
// must not evaluate y when x short-circuits).
func (ev *evalCtx) arith(op lang.Kind, x, y sv) (sv, error) {
	ev.charge()
	switch op {
	case lang.SLASH, lang.PCT:
		word := "division"
		if op == lang.PCT {
			word = "modulo"
		}
		if y.n.isConst() {
			if y.n.val == 0 {
				return sv{}, &abortErr{reason: word + " by zero"}
			}
		} else {
			zero, err := ev.m.decide(ev.m.t.bin(lang.EQ, y.n, ev.m.t.constant(0)), ev.src)
			if err != nil {
				return sv{}, err
			}
			if zero {
				return sv{}, &abortErr{reason: word + " by zero"}
			}
		}
		w := combineWidth(x.w, y.w)
		return sv{ev.m.t.mask(ev.m.t.bin(op, x.n, y.n), w), w}, nil
	case lang.PLUS, lang.MINUS, lang.STAR:
		w := combineWidth(x.w, y.w)
		return sv{ev.m.t.mask(ev.m.t.bin(op, x.n, y.n), w), w}, nil
	case lang.LT, lang.LE, lang.GT, lang.GE, lang.EQ, lang.NE:
		return sv{ev.m.t.bin(op, x.n, y.n), 0}, nil
	case lang.AND:
		// x was already decided nonzero by the caller.
		return sv{ev.m.t.boolish(y.n), 0}, nil
	case lang.OR:
		// x was already decided zero by the caller.
		return sv{ev.m.t.boolish(y.n), 0}, nil
	default:
		return sv{}, &abortErr{reason: fmt.Sprintf("unsupported operator %s", op)}
	}
}

// builtin evaluates hash/min/max after argument evaluation.
func (ev *evalCtx) builtin(name string, args []sv) (sv, error) {
	ev.charge()
	switch name {
	case "hash":
		if len(args) != 2 {
			return sv{}, &abortErr{reason: "hash expects 2 arguments"}
		}
		return sv{ev.m.t.call("hash", args[0].n, args[1].n), 64}, nil
	case "min", "max":
		if len(args) != 2 {
			return sv{}, &obligErr{kind: "unsupported", detail: name + " with arity != 2"}
		}
		return sv{ev.m.t.call(name, args[0].n, args[1].n), combineWidth(args[0].w, args[1].w)}, nil
	}
	return sv{}, &abortErr{reason: "unknown builtin " + name}
}

// ---------- source side: the elastic program under the assignment ----------

// stepCtx builds the evaluation context for one schedule step. The
// target side carries the same action/iteration bindings: it needs them
// to replay invocation guards for table-dispatched steps, and they are
// inert under evalC.
func (m *machine) stepCtx(st *pathState, s *tvStep, src bool) *evalCtx {
	loopVar := ""
	if l := s.inv.Loop(); l != nil {
		loopVar = l.Var
	}
	return &evalCtx{m: m, st: st, src: src, action: s.inv.Action, iter: s.iter, loopVar: loopVar, stage: s.stage}
}

// guardsL evaluates the invocation guards as the interpreter does: one
// decision per guard, stopping at the first false.
func (ev *evalCtx) guardsL(guards []lang.Expr) (bool, error) {
	for _, g := range guards {
		v, err := ev.evalL(g)
		if err != nil {
			return false, err
		}
		take, err := ev.m.decide(v.n, ev.src)
		if err != nil {
			return false, err
		}
		if !take {
			return false, nil
		}
	}
	return true, nil
}

// runSource executes the canonical schedule over the source AST. A
// packet abort is recorded in st.aborted (not returned); residual
// obligations are returned.
func (m *machine) runSource(st *pathState) error {
	for i := range m.steps {
		s := &m.steps[i]
		ev := m.stepCtx(st, s, true)
		pass, err := ev.guardsL(s.inv.Guards)
		if err == nil && pass {
			err = ev.blockL(s.inv.Action.Decl.Body)
		}
		if err != nil {
			if ab, isAbort := err.(*abortErr); isAbort {
				st.aborted = ab.reason
				return nil
			}
			return err
		}
	}
	return nil
}

func (ev *evalCtx) blockL(b *lang.Block) error {
	for _, s := range b.Stmts {
		if err := ev.stmtL(s); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evalCtx) stmtL(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.Block:
		return ev.blockL(s)
	case *lang.AssignStmt:
		v, err := ev.evalL(s.RHS)
		if err != nil {
			return err
		}
		return ev.assignL(s.LHS, v)
	case *lang.IfStmt:
		c, err := ev.evalL(s.Cond)
		if err != nil {
			return err
		}
		take, err := ev.m.decide(c.n, ev.src)
		if err != nil {
			return err
		}
		if take {
			return ev.blockL(s.Then)
		}
		if s.Else != nil {
			return ev.blockL(s.Else)
		}
		return nil
	default:
		return &abortErr{reason: fmt.Sprintf("unsupported statement %T", s)}
	}
}

// evalL mirrors the interpreter's exprW over lang expressions.
func (ev *evalCtx) evalL(e lang.Expr) (sv, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		return sv{ev.m.t.constant(uint64(e.Value)), 0}, nil
	case *lang.BoolLit:
		return sv{ev.m.t.boolConst(e.Value), 0}, nil
	case *lang.Unary:
		x, err := ev.evalL(e.X)
		if err != nil {
			return sv{}, err
		}
		ev.charge()
		switch e.Op {
		case lang.MINUS:
			return sv{ev.m.t.mask(ev.m.t.neg(x.n), x.w), x.w}, nil
		case lang.NOT:
			return sv{ev.m.t.not(x.n), 0}, nil
		}
		return sv{}, &abortErr{reason: fmt.Sprintf("unsupported unary %s", e.Op)}
	case *lang.Binary:
		x, err := ev.evalL(e.X)
		if err != nil {
			return sv{}, err
		}
		switch e.Op {
		case lang.AND:
			nz, err := ev.m.decide(x.n, ev.src)
			if err != nil {
				return sv{}, err
			}
			if !nz {
				return sv{ev.m.t.constant(0), 0}, nil
			}
		case lang.OR:
			nz, err := ev.m.decide(x.n, ev.src)
			if err != nil {
				return sv{}, err
			}
			if nz {
				return sv{ev.m.t.constant(1), 0}, nil
			}
		}
		y, err := ev.evalL(e.Y)
		if err != nil {
			return sv{}, err
		}
		return ev.arith(e.Op, x, y)
	case *lang.CallExpr:
		args := make([]sv, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.evalL(a)
			if err != nil {
				return sv{}, err
			}
			args[i] = v
		}
		return ev.builtin(e.Name, args)
	case *lang.Ref:
		return ev.loadL(e)
	default:
		return sv{}, &abortErr{reason: fmt.Sprintf("unsupported expression %T", e)}
	}
}

// indexValueL mirrors the interpreter's compile-time instance index
// resolution: the action's index parameter, else a full evaluation.
func (ev *evalCtx) indexValueL(e lang.Expr) (sv, error) {
	if ref, ok := e.(*lang.Ref); ok && ref.IsSimpleIdent() &&
		ev.action.Decl != nil && ref.Base() == ev.action.Decl.IndexParam {
		return sv{ev.m.t.constant(uint64(ev.iter)), 0}, nil
	}
	return ev.evalL(e)
}

// constIndex requires a statically known instance index. The
// interpreter can chase dynamic instance indexes at runtime, but the
// generated program cannot (codegen pins instances at compile time),
// so a dynamic index is an obligation, not an abort.
func constIndex(v sv, what string) (uint64, error) {
	if !v.n.isConst() {
		return 0, &obligErr{kind: "unsupported", detail: "dynamic " + what + " index"}
	}
	return v.n.val, nil
}

func (ev *evalCtx) loadL(ref *lang.Ref) (sv, error) {
	base := ref.Base()
	if ref.IsSimpleIdent() {
		if ev.action.Decl != nil && base == ev.action.Decl.IndexParam {
			return sv{ev.m.t.constant(uint64(ev.iter)), 0}, nil
		}
		if ev.loopVar != "" && base == ev.loopVar {
			return sv{ev.m.t.constant(uint64(ev.iter)), 0}, nil
		}
		if sym := ev.m.u.SymbolicByName(base); sym != nil {
			return sv{ev.m.t.constant(uint64(ev.m.layout.Symbolics[sym.Name])), 0}, nil
		}
		if v, ok := ev.m.u.Consts[base]; ok {
			return sv{ev.m.t.constant(uint64(v)), 0}, nil
		}
		return sv{}, &abortErr{reason: "unknown name " + base}
	}
	if reg := ev.m.u.RegisterByName(base); reg != nil {
		inst, cell, err := ev.regTargetL(ref, reg)
		if err != nil {
			return sv{}, err
		}
		return ev.regRead(base, inst, cell.n, reg.Width), nil
	}
	if si := ev.m.u.StructByName(base); si != nil && len(ref.Segs) == 2 {
		f := si.Field(ref.Segs[1].Name)
		if f == nil {
			return sv{}, &abortErr{reason: "unknown field " + lang.PrintExpr(ref)}
		}
		k, err := ev.metaKeyL(ref, f)
		if err != nil {
			return sv{}, err
		}
		if si.IsHeader {
			return ev.hdrRead(k, f.Width), nil
		}
		return ev.metaRead(k, f.Width), nil
	}
	return sv{}, &abortErr{reason: "cannot read " + lang.PrintExpr(ref)}
}

func (ev *evalCtx) regTargetL(ref *lang.Ref, reg *lang.Register) (int64, sv, error) {
	seg := ref.Segs[0]
	if reg.Decl.Count != nil && len(seg.Indexes) == 2 {
		iv, err := ev.indexValueL(seg.Indexes[0])
		if err != nil {
			return 0, sv{}, err
		}
		inst, err := constIndex(iv, "register instance")
		if err != nil {
			return 0, sv{}, err
		}
		cell, err := ev.evalL(seg.Indexes[1])
		if err != nil {
			return 0, sv{}, err
		}
		return int64(inst), cell, nil
	}
	if len(seg.Indexes) == 1 {
		cell, err := ev.evalL(seg.Indexes[0])
		if err != nil {
			return 0, sv{}, err
		}
		return 0, cell, nil
	}
	return 0, sv{}, &abortErr{reason: "malformed register access " + lang.PrintExpr(ref)}
}

func (ev *evalCtx) metaKeyL(ref *lang.Ref, f *lang.MetaField) (string, error) {
	fseg := ref.Segs[1]
	qual := f.Qual()
	elastic := f.Count.IsSymbolic() || f.Count.Const > 1
	if !elastic {
		return qual, nil
	}
	if len(fseg.Indexes) != 1 {
		return "", &abortErr{reason: "elastic field " + qual + " needs one index"}
	}
	iv, err := ev.indexValueL(fseg.Indexes[0])
	if err != nil {
		return "", err
	}
	idx, err := constIndex(iv, "field instance")
	if err != nil {
		return "", err
	}
	return key(qual, idx), nil
}

func (ev *evalCtx) assignL(ref *lang.Ref, v sv) error {
	base := ref.Base()
	if reg := ev.m.u.RegisterByName(base); reg != nil {
		inst, cell, err := ev.regTargetL(ref, reg)
		if err != nil {
			return err
		}
		ev.regWrite(base, inst, cell.n, v.n, reg.Width)
		return nil
	}
	if si := ev.m.u.StructByName(base); si != nil && len(ref.Segs) == 2 {
		f := si.Field(ref.Segs[1].Name)
		if f == nil {
			return &abortErr{reason: "unknown field " + lang.PrintExpr(ref)}
		}
		k, err := ev.metaKeyL(ref, f)
		if err != nil {
			return err
		}
		if si.IsHeader {
			ev.st.hdr[k] = ev.m.t.mask(v.n, f.Width)
			return nil
		}
		ev.st.meta[k] = ev.m.t.mask(v.n, f.Width)
		return nil
	}
	return &abortErr{reason: "cannot assign to " + lang.PrintExpr(ref)}
}

// ---------- target side: the emitted concrete program ----------

// guardsC evaluates apply-block guard conditions, one decision per
// guard, stopping at the first false.
func (ev *evalCtx) guardsC(guards []codegen.CExpr) (bool, error) {
	for _, g := range guards {
		v, err := ev.evalC(g)
		if err != nil {
			return false, err
		}
		take, err := ev.m.decide(v.n, ev.src)
		if err != nil {
			return false, err
		}
		if !take {
			return false, nil
		}
	}
	return true, nil
}

// runTarget executes the same canonical schedule over the emitted
// program with the same interpreter semantics: guards from the apply
// block (or, for table-dispatched actions, replayed from the
// invocation — the emitted text leaves them to the table's match),
// bodies from the emitted actions, charged at the stage each action was
// emitted for. Branch conditions must be determined by the source
// path's decisions (plus intervals/constants); the target makes no free
// decisions of its own.
func (m *machine) runTarget(st *pathState) error {
	for i := range m.steps {
		s := &m.steps[i]
		if s.caction == nil {
			return &obligErr{kind: "unknown-action", detail: fmt.Sprintf("emitted program lacks action %s", codegen.InstanceName(s.inv.Action.Name, s.iter))}
		}
		ev := m.stepCtx(st, s, false)
		var pass bool
		var err error
		if s.hasApply {
			pass, err = ev.guardsC(s.guards)
		} else {
			pass, err = ev.guardsL(s.inv.Guards)
		}
		if err == nil && pass {
			bodyEv := &evalCtx{m: m, st: st, src: false, stage: s.caction.Stage}
			for _, stmt := range s.caction.Body {
				if err = bodyEv.stmtC(stmt); err != nil {
					break
				}
			}
		}
		if err != nil {
			if ab, isAbort := err.(*abortErr); isAbort {
				st.aborted = ab.reason
				return nil
			}
			return err
		}
	}
	return nil
}

func (ev *evalCtx) stmtC(s codegen.CStmt) error {
	switch s := s.(type) {
	case *codegen.CAssign:
		v, err := ev.evalC(s.RHS)
		if err != nil {
			return err
		}
		return ev.assignC(s.LHS, v)
	case *codegen.CIf:
		c, err := ev.evalC(s.Cond)
		if err != nil {
			return err
		}
		take, err := ev.m.decide(c.n, ev.src)
		if err != nil {
			return err
		}
		body := s.Then
		if !take {
			if !s.HasElse {
				return nil
			}
			body = s.Else
		}
		for _, inner := range body {
			if err := ev.stmtC(inner); err != nil {
				return err
			}
		}
		return nil
	default:
		return &obligErr{kind: "unsupported", detail: "elided statement in emitted program"}
	}
}

func (ev *evalCtx) evalC(e codegen.CExpr) (sv, error) {
	switch e := e.(type) {
	case *codegen.CInt:
		return sv{ev.m.t.constant(uint64(e.Value)), 0}, nil
	case *codegen.CBool:
		return sv{ev.m.t.boolConst(e.Value), 0}, nil
	case *codegen.CUnary:
		x, err := ev.evalC(e.X)
		if err != nil {
			return sv{}, err
		}
		ev.charge()
		switch e.Op {
		case lang.MINUS:
			return sv{ev.m.t.mask(ev.m.t.neg(x.n), x.w), x.w}, nil
		case lang.NOT:
			return sv{ev.m.t.not(x.n), 0}, nil
		}
		return sv{}, &abortErr{reason: fmt.Sprintf("unsupported unary %s", e.Op)}
	case *codegen.CBinary:
		x, err := ev.evalC(e.X)
		if err != nil {
			return sv{}, err
		}
		switch e.Op {
		case lang.AND:
			nz, err := ev.m.decide(x.n, ev.src)
			if err != nil {
				return sv{}, err
			}
			if !nz {
				return sv{ev.m.t.constant(0), 0}, nil
			}
		case lang.OR:
			nz, err := ev.m.decide(x.n, ev.src)
			if err != nil {
				return sv{}, err
			}
			if nz {
				return sv{ev.m.t.constant(1), 0}, nil
			}
		}
		y, err := ev.evalC(e.Y)
		if err != nil {
			return sv{}, err
		}
		return ev.arith(e.Op, x, y)
	case *codegen.CCall:
		args := make([]sv, len(e.Args))
		for i, a := range e.Args {
			v, err := ev.evalC(a)
			if err != nil {
				return sv{}, err
			}
			args[i] = v
		}
		return ev.builtin(e.Name, args)
	case *codegen.CRegRef:
		cell, err := ev.evalC(e.Idx)
		if err != nil {
			return sv{}, err
		}
		return ev.regRead(e.Reg, e.Inst, cell.n, e.Width), nil
	case *codegen.CFieldRef:
		k, err := fieldKeyC(e)
		if err != nil {
			return sv{}, err
		}
		if e.Header {
			return ev.hdrRead(k, e.Width), nil
		}
		return ev.metaRead(k, e.Width), nil
	case *codegen.CName:
		return sv{}, &abortErr{reason: "unknown name " + e.Name}
	default:
		return sv{}, &obligErr{kind: "unsupported", detail: "unmodeled expression in emitted program"}
	}
}

func fieldKeyC(e *codegen.CFieldRef) (string, error) {
	if e.Elastic && e.Index < 0 {
		return "", &obligErr{kind: "unsupported", detail: fmt.Sprintf("elastic field %s.%s emitted without an instance", e.Struct, e.Field)}
	}
	if e.Elastic {
		return key(e.Struct+"."+e.Field, uint64(e.Index)), nil
	}
	return e.Struct + "." + e.Field, nil
}

func (ev *evalCtx) assignC(lhs codegen.CExpr, v sv) error {
	switch e := lhs.(type) {
	case *codegen.CRegRef:
		cell, err := ev.evalC(e.Idx)
		if err != nil {
			return err
		}
		ev.regWrite(e.Reg, e.Inst, cell.n, v.n, e.Width)
		return nil
	case *codegen.CFieldRef:
		k, err := fieldKeyC(e)
		if err != nil {
			return err
		}
		if e.Header {
			ev.st.hdr[k] = ev.m.t.mask(v.n, e.Width)
			return nil
		}
		ev.st.meta[k] = ev.m.t.mask(v.n, e.Width)
		return nil
	default:
		return &obligErr{kind: "unsupported", detail: "unmodeled assignment target in emitted program"}
	}
}

// ---------- path enumeration and comparison ----------

// equivResult summarizes the equivalence run.
type equivResult struct {
	Paths          int
	PathsProved    int
	Decisions      int
	Pruned         int
	Fallbacks      int
	Samples        int
	Counterexample string
	Failures       map[failure]int // per-failure path counts
}

func (m *machine) addFailure(res *equivResult, f failure) {
	res.Failures[f]++
}

// runEquivalence enumerates every feasible source path, replays the
// target under the same decisions, and compares the outcomes. Residual
// obligations trigger the concrete fallback search; nothing passes
// silently.
func runEquivalence(m *machine, samples int) *equivResult {
	res := &equivResult{Failures: make(map[failure]int)}
	m.script = nil
	for {
		if res.Paths >= m.pathBudget {
			m.addFailure(res, failure{Kind: "path-budget", Detail: fmt.Sprintf("more than %d paths", m.pathBudget)})
			break
		}
		res.Paths++
		fails := m.runPath()
		if len(fails) == 0 {
			res.PathsProved++
		}
		for _, f := range fails {
			m.addFailure(res, f)
		}
		// Backtrack: flip the deepest true decision.
		k := len(m.taken) - 1
		for k >= 0 && !m.taken[k] {
			k--
		}
		if k < 0 {
			break
		}
		m.script = append(m.script[:0], m.taken[:k]...)
		m.script = append(m.script, false)
	}
	res.Decisions = m.decisions
	res.Pruned = m.pruned
	if len(res.Failures) > 0 {
		res.Fallbacks = len(res.Failures)
		res.Samples = samples
		res.Counterexample = m.concreteSearch(samples)
	}
	return res
}

// runPath executes one source path and its target replay, returning
// the path's failures (empty means the path's obligations discharged).
func (m *machine) runPath() []failure {
	m.assign = make(map[*node]bool)
	m.taken = m.taken[:0]
	stages := len(m.layout.Stages)
	src := newPathState(stages)
	tgt := newPathState(stages)
	var fails []failure
	if err := m.runSource(src); err != nil {
		oe := err.(*obligErr)
		return append(fails, failure{Kind: oe.kind, Detail: oe.detail})
	}
	if err := m.runTarget(tgt); err != nil {
		oe := err.(*obligErr)
		return append(fails, failure{Kind: oe.kind, Detail: oe.detail})
	}
	return m.compare(src, tgt)
}

// compare discharges the per-path equivalence obligations.
func (m *machine) compare(src, tgt *pathState) []failure {
	var fails []failure
	if src.aborted != "" || tgt.aborted != "" {
		if src.aborted != tgt.aborted {
			fails = append(fails, failure{
				Kind:   "abort-divergence",
				Detail: fmt.Sprintf("source abort %q vs emitted abort %q", src.aborted, tgt.aborted),
			})
		}
		// Register writes made before the abort persist; outputs are
		// not produced, so only state and stats remain comparable.
	} else {
		fails = append(fails, compareMaps("header", src.hdr, tgt.hdr)...)
		fails = append(fails, compareMaps("metadata", src.meta, tgt.meta)...)
	}
	fails = append(fails, m.compareRegs(src, tgt)...)
	fails = append(fails, compareStats(src, tgt)...)
	return fails
}

func compareMaps(kind string, a, b map[string]*node) []failure {
	var fails []failure
	for _, k := range unionKeys(a, b) {
		na, okA := a[k]
		nb, okB := b[k]
		switch {
		case !okA:
			fails = append(fails, failure{Kind: kind + "-mismatch", Detail: fmt.Sprintf("%s written only by the emitted program", k)})
		case !okB:
			fails = append(fails, failure{Kind: kind + "-mismatch", Detail: fmt.Sprintf("%s written only by the source", k)})
		case na != nb:
			fails = append(fails, failure{Kind: kind + "-mismatch", Detail: fmt.Sprintf("%s differs between source and emitted program", k)})
		}
	}
	return fails
}

func (m *machine) compareRegs(src, tgt *pathState) []failure {
	var fails []failure
	seen := make(map[regKey]bool, len(src.regs)+len(tgt.regs))
	var keys []regKey
	for k := range src.regs {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range tgt.regs {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].inst < keys[j].inst
	})
	for _, k := range keys {
		na, okA := src.regs[k]
		nb, okB := tgt.regs[k]
		if !okA {
			na = m.t.arrInit(k.name, k.inst)
		}
		if !okB {
			nb = m.t.arrInit(k.name, k.inst)
		}
		if m.concrete {
			na = m.concreteArr(na)
			nb = m.concreteArr(nb)
		}
		if na != nb {
			fails = append(fails, failure{Kind: "register-mismatch", Detail: fmt.Sprintf("final state of %s/%d differs", k.name, k.inst)})
		}
	}
	return fails
}

// concreteArr normalizes a concrete store chain: redundant stores of
// the same constant cell collapse to the last one, and cells are
// ordered, so equal concrete register contents compare equal even when
// the two sides wrote in different (commuting) orders.
func (m *machine) concreteArr(arr *node) *node {
	cells := map[uint64]*node{}
	a := arr
	for a.kind == kStore {
		idx, val := a.args[1], a.args[2]
		if !idx.isConst() || !val.isConst() {
			return arr // not fully concrete; compare structurally
		}
		if _, ok := cells[idx.val]; !ok {
			cells[idx.val] = val
		}
		a = a.args[0]
	}
	idxs := make([]uint64, 0, len(cells))
	for i := range cells {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out := a
	for _, i := range idxs {
		out = m.t.store(out, m.t.constant(i), cells[i])
	}
	return out
}

func compareStats(src, tgt *pathState) []failure {
	var fails []failure
	if src.regReads != tgt.regReads {
		fails = append(fails, failure{Kind: "stats-mismatch", Detail: fmt.Sprintf("RegReads %d vs %d", src.regReads, tgt.regReads)})
	}
	if src.regWrites != tgt.regWrites {
		fails = append(fails, failure{Kind: "stats-mismatch", Detail: fmt.Sprintf("RegWrites %d vs %d", src.regWrites, tgt.regWrites)})
	}
	for i := range src.alu {
		if src.alu[i] != tgt.alu[i] {
			fails = append(fails, failure{Kind: "stats-mismatch", Detail: fmt.Sprintf("ALUOps[stage %d] %d vs %d", i, src.alu[i], tgt.alu[i])})
		}
	}
	return fails
}

func unionKeys(a, b map[string]*node) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var keys []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// concreteSearch replays both sides on deterministic pseudo-random
// concrete packets (zeroed registers), looking for a concrete witness
// of divergence. It returns a description of the first counterexample
// found, or "" if sampling found none (the verdict stays failed — an
// undischarged obligation is never a pass).
func (m *machine) concreteSearch(samples int) string {
	defer func() { m.concrete = false }()
	m.concrete = true
	for trial := 1; trial <= samples; trial++ {
		m.trial = uint64(trial)
		m.assign = make(map[*node]bool)
		m.taken = m.taken[:0]
		m.script = nil
		stages := len(m.layout.Stages)
		src := newPathState(stages)
		tgt := newPathState(stages)
		if err := m.runSource(src); err != nil {
			continue // unsupported constructs stay symbolic obligations
		}
		if err := m.runTarget(tgt); err != nil {
			continue
		}
		if fails := m.compare(src, tgt); len(fails) > 0 {
			return fmt.Sprintf("trial %d: %s: %s", trial, fails[0].Kind, fails[0].Detail)
		}
	}
	return ""
}
