// Package tv is the translation validator: it certifies that one
// solved compile — an ilpgen.Layout plus the concrete program codegen
// built from it — faithfully implements its elastic source.
//
// Two independent halves feed one Certificate:
//
//   - Equivalence (eval.go): bounded symbolic execution of the unrolled
//     source (under the solved symbolic assignment) and of the emitted
//     program over a shared symbolic packet and register file, both
//     walking the layout's canonical (stage, invocation order,
//     iteration) schedule with the emitted apply block reconciled
//     against it at setup. Every feasible path must agree on header
//     outputs, metadata, final register state, Stats counters, and
//     abort behavior. Residual obligations fall back to concrete
//     counterexample search and a failed verdict — never a silent pass.
//   - Audit (audit.go): re-derives stage, ALU, memory, register, and
//     PHV budgets from the layout and the source, checked directly
//     against the pisa target spec without trusting ilpgen's own
//     constraint matrix.
//
// See docs/TRANSLATION_VALIDATION.md for the exact semantics covered
// and the honest list of what is not proven.
package tv

import (
	"p4all/internal/check"
	"p4all/internal/codegen"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/obs"
)

// Options configures one validation run.
type Options struct {
	// Name labels the certificate (the app or file being compiled).
	Name string
	// PathBudget bounds the number of enumerated source paths
	// (default 65536). Exceeding it is a failed obligation.
	PathBudget int
	// DecisionBudget bounds total free branch decisions (default
	// 4x PathBudget); a backstop against degenerate branch nests.
	DecisionBudget int
	// FallbackSamples is the number of concrete trials the
	// counterexample search runs per failed run (default 64).
	FallbackSamples int
	// Tracer receives tv.* spans and counters (nil disables).
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "program"
	}
	if o.PathBudget <= 0 {
		o.PathBudget = 1 << 16
	}
	if o.DecisionBudget <= 0 {
		o.DecisionBudget = 4 * o.PathBudget
	}
	if o.FallbackSamples <= 0 {
		o.FallbackSamples = 64
	}
	return o
}

// Validate certifies one compile. It never returns an error: every
// problem — including the validator's own inability to model a
// construct — is an obligation in the certificate, and the verdict is
// proved only when nothing remains.
func Validate(u *lang.Unit, layout *ilpgen.Layout, prog *codegen.Concrete, opts Options) *Certificate {
	opts = opts.withDefaults()
	span := opts.Tracer.StartSpan("tv.validate",
		obs.String("program", opts.Name),
		obs.String("target", layout.Target.Name))

	cert := &Certificate{
		Schema:       CertSchema,
		Program:      opts.Name,
		Target:       layout.Target.Name,
		SourceSHA256: sha256Hex(u.Source),
		P4SHA256:     sha256Hex(codegen.Render(prog)),
	}
	for _, sym := range u.Symbolics {
		cert.Symbolics = append(cert.Symbolics, SymbolicValue{Name: sym.Name, Value: layout.Symbolics[sym.Name]})
	}
	for _, w := range check.Bounds(u) {
		cert.BoundsWarnings = append(cert.BoundsWarnings, w.String())
	}

	auditSpan := span.Child("tv.audit")
	cert.Audit = *Audit(u, layout)
	auditSpan.End()

	eqSpan := span.Child("tv.equivalence")
	m, setupFail := newMachine(u, layout, prog, opts.PathBudget, opts.DecisionBudget)
	if setupFail != nil {
		cert.Equivalence = EquivalenceReport{
			Fallbacks:   1,
			Obligations: []Obligation{{Kind: setupFail.Kind, Detail: setupFail.Detail, Paths: 0}},
		}
	} else {
		eq := runEquivalence(m, opts.FallbackSamples)
		cert.Equivalence = EquivalenceReport{
			Paths:           eq.Paths,
			PathsProved:     eq.PathsProved,
			Decisions:       eq.Decisions,
			PrunedDecisions: eq.Pruned,
			Fallbacks:       eq.Fallbacks,
			Samples:         eq.Samples,
			Counterexample:  eq.Counterexample,
			Obligations:     obligations(eq.Failures),
		}
	}
	eqSpan.SetAttrs(
		obs.Int("paths", cert.Equivalence.Paths),
		obs.Int("obligations", len(cert.Equivalence.Obligations)))
	eqSpan.End()

	if len(cert.Equivalence.Obligations) == 0 && !cert.Audit.Failed() {
		cert.Verdict = VerdictProved
	} else {
		cert.Verdict = VerdictFailed
	}

	if tr := opts.Tracer; tr != nil {
		tr.Counter("tv.paths").Add(int64(cert.Equivalence.Paths))
		tr.Counter("tv.decisions").Add(int64(cert.Equivalence.Decisions))
		tr.Counter("tv.pruned").Add(int64(cert.Equivalence.PrunedDecisions))
		tr.Counter("tv.fallbacks").Add(int64(cert.Equivalence.Fallbacks))
		if !cert.Proved() {
			tr.Counter("tv.failed").Add(1)
		}
	}
	span.SetAttrs(obs.String("verdict", cert.Verdict))
	span.End()
	return cert
}
