package tv

import (
	"testing"

	"p4all/internal/modules"
	"p4all/internal/pisa"
)

// BenchmarkCertify measures one full validation (symbolic equivalence
// over every path plus the resource audit) of a solved CMS compile.
// It is wired into the CI benchmark gate (cmd/benchgate): a change that
// blows up the path count or the per-path symbolic work shows up here
// as an ns/op regression, not as a silent CI slowdown.
func BenchmarkCertify(b *testing.B) {
	u, layout, prog := compileFor(b, modules.StandaloneCMS(), pisa.EvalTarget(pisa.Mb/4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cert := Validate(u, layout, prog, Options{Name: "cms"})
		if !cert.Proved() {
			b.Fatalf("benchmark compile no longer certifies: %s", cert.Summary())
		}
	}
}
