package tv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"p4all/internal/apps"
	"p4all/internal/codegen"
	"p4all/internal/ilp"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/modules"
	"p4all/internal/pisa"
	"p4all/internal/unroll"
)

var update = flag.Bool("update", false, "rewrite golden certificate files")

// compileFor runs the compile pipeline inline. The tests cannot use
// internal/core (it imports this package), so they drive the phases
// directly, with the same deterministic solver configuration the
// difftest harness uses.
func compileFor(t testing.TB, src string, target pisa.Target) (*lang.Unit, *ilpgen.Layout, *codegen.Concrete) {
	t.Helper()
	u, err := lang.ParseAndResolve(src)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := unroll.UpperBounds(u, &target)
	if err != nil {
		t.Fatal(err)
	}
	ilpProg, err := ilpgen.Generate(u, &target, bounds)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := ilpProg.Solve(ilp.Options{Deterministic: true, Gap: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Build(u, layout)
	if err != nil {
		t.Fatal(err)
	}
	return u, layout, prog
}

func mustProve(t *testing.T, cert *Certificate) {
	t.Helper()
	if cert.Proved() {
		return
	}
	t.Errorf("verdict %s: %s", cert.Verdict, cert.Summary())
	for _, ob := range cert.Equivalence.Obligations {
		t.Errorf("  obligation %s: %s (%d paths)", ob.Kind, ob.Detail, ob.Paths)
	}
	for _, c := range cert.Audit.Checks {
		if !c.OK {
			t.Errorf("  audit %s: %s", c.Name, c.Detail)
		}
	}
}

// TestAppsCertifyProved is the headline acceptance check: all four
// benchmark applications must certify with a fully symbolic proof —
// zero residual obligations, zero concrete fallbacks.
func TestAppsCertifyProved(t *testing.T) {
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			u, layout, prog := compileFor(t, app.Source, pisa.EvalTarget(pisa.Mb))
			cert := Validate(u, layout, prog, Options{Name: app.Name})
			mustProve(t, cert)
			if cert.Equivalence.Fallbacks != 0 {
				t.Errorf("%d fallbacks, want a fully symbolic proof", cert.Equivalence.Fallbacks)
			}
			if cert.Equivalence.Paths == 0 {
				t.Error("no paths enumerated")
			}
		})
	}
}

func TestLibraryModulesCertifyProved(t *testing.T) {
	for name, src := range map[string]string{
		"cms":   modules.StandaloneCMS(),
		"bloom": modules.StandaloneBloom(),
		"kvs":   modules.StandaloneKVS(),
		"ht":    modules.StandaloneHashTable(),
	} {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			u, layout, prog := compileFor(t, src, pisa.EvalTarget(pisa.Mb/4))
			cert := Validate(u, layout, prog, Options{Name: name})
			mustProve(t, cert)
		})
	}
}

// TestTableProgramProved exercises the table path of the schedule
// reconciliation: the match placement must line up with the table's
// apply entry, and the table-dispatched actions (absent from the apply
// block) must still execute at their placed slots on both sides.
func TestTableProgramProved(t *testing.T) {
	src := `
header ipv4 { bit<32> dst; }
struct meta { bit<9> port; }
action set_port() { meta.port = 1; }
action drop_pkt() { meta.port = 0; }
table fwd {
    key = { ipv4.dst; }
    actions = { set_port; drop_pkt; }
    size = 512;
}
control main { apply { fwd.apply(); } }
`
	u, layout, prog := compileFor(t, src, pisa.EvalTarget(pisa.Mb))
	cert := Validate(u, layout, prog, Options{Name: "fwd"})
	mustProve(t, cert)
}

// TestDivergentAbortPathsProved: a symbolic divisor forks an abort path
// (division by zero); both sides must abort identically on it and agree
// on the surviving path.
func TestDivergentAbortPathsProved(t *testing.T) {
	src := `
header pkt { bit<32> a; bit<32> b; }
struct meta { bit<32> q; }
action div_it() { meta.q = pkt.a / pkt.b; }
control main { apply { div_it(); } }
`
	u, layout, prog := compileFor(t, src, pisa.EvalTarget(pisa.Mb))
	cert := Validate(u, layout, prog, Options{Name: "div"})
	mustProve(t, cert)
	if cert.Equivalence.Paths != 2 {
		t.Errorf("paths = %d, want 2 (divisor zero and nonzero)", cert.Equivalence.Paths)
	}
}

func TestPathBudgetIsAnObligation(t *testing.T) {
	u, layout, prog := compileFor(t, modules.StandaloneCMS(), pisa.EvalTarget(pisa.Mb/4))
	cert := Validate(u, layout, prog, Options{Name: "cms", PathBudget: 1})
	if cert.Proved() {
		t.Fatal("path budget 1 must not prove a branching program")
	}
	found := false
	for _, ob := range cert.Equivalence.Obligations {
		if ob.Kind == "path-budget" {
			found = true
		}
	}
	if !found {
		t.Errorf("no path-budget obligation: %+v", cert.Equivalence.Obligations)
	}
}

// TestCertificateDeterminism: the same compile must produce
// byte-identical certificate JSON across repeated validations and
// across solver thread counts (the deterministic solver pins the
// layout; everything downstream must be order-stable).
func TestCertificateDeterminism(t *testing.T) {
	src := modules.StandaloneCMS()
	target := pisa.EvalTarget(pisa.Mb / 4)
	u, err := lang.ParseAndResolve(src)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := unroll.UpperBounds(u, &target)
	if err != nil {
		t.Fatal(err)
	}
	ilpProg, err := ilpgen.Generate(u, &target, bounds)
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for _, threads := range []int{1, 4} {
		layout, err := ilpProg.Solve(ilp.Options{Deterministic: true, Gap: 0.1, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := codegen.Build(u, layout)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			cert := Validate(u, layout, prog, Options{Name: "cms"})
			data, err := cert.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				prev = data
			} else if !bytes.Equal(prev, data) {
				t.Fatalf("certificate not byte-stable (threads=%d rep=%d):\n%s\nvs\n%s",
					threads, rep, prev, data)
			}
		}
	}
}

// TestCertificateGolden pins the exact certificate bytes for a small
// deterministic compile. Regenerate with `go test ./internal/tv -run
// Golden -update` after an intentional schema or semantics change.
func TestCertificateGolden(t *testing.T) {
	u, layout, prog := compileFor(t, modules.StandaloneCMS(), pisa.RunningExampleTarget())
	cert := Validate(u, layout, prog, Options{Name: "cms"})
	data, err := cert.JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "cms_certificate.golden")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("certificate drifted from golden file:\n got:\n%s\nwant:\n%s", data, want)
	}
}

// TestAuditBudgetsReported: a proved certificate carries the re-derived
// per-stage budgets, each within its target limit.
func TestAuditBudgetsReported(t *testing.T) {
	u, layout, prog := compileFor(t, modules.StandaloneCMS(), pisa.EvalTarget(pisa.Mb/4))
	cert := Validate(u, layout, prog, Options{Name: "cms"})
	mustProve(t, cert)
	if len(cert.Audit.Budgets) == 0 {
		t.Fatal("no budgets in audit")
	}
	for _, b := range cert.Audit.Budgets {
		if b.Used > b.Limit {
			t.Errorf("budget %s stage %d: used %d > limit %d (audit should have failed)",
				b.Resource, b.Stage, b.Used, b.Limit)
		}
	}
}
