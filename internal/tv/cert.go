package tv

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
)

// CertSchema identifies the certificate JSON layout. Bump on any
// incompatible change; consumers (difftest, CI) check it.
const CertSchema = "p4all/tv/v1"

// VerdictProved and VerdictFailed are the two certificate verdicts.
// There is deliberately no third state: an obligation the validator
// cannot discharge is a failure, never a silent pass.
const (
	VerdictProved = "proved"
	VerdictFailed = "failed"
)

// SymbolicValue is one solved symbolic in the certificate.
type SymbolicValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Obligation is one undischarged proof obligation, with the number of
// enumerated paths it blocked.
type Obligation struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Paths  int    `json:"paths"`
}

// EquivalenceReport summarizes the symbolic equivalence run.
type EquivalenceReport struct {
	// Paths is the number of source paths enumerated; PathsProved of
	// them discharged every obligation symbolically.
	Paths       int `json:"paths"`
	PathsProved int `json:"paths_proved"`
	// Decisions counts free branch decisions made; PrunedDecisions
	// counts branches discharged by interval analysis without forking.
	Decisions       int `json:"decisions"`
	PrunedDecisions int `json:"pruned_decisions"`
	// Fallbacks is the number of distinct residual obligations that
	// forced the concrete counterexample search; Samples is how many
	// concrete trials it ran.
	Fallbacks int `json:"fallbacks"`
	Samples   int `json:"samples,omitempty"`
	// Counterexample describes a concrete diverging input, when the
	// fallback search found one.
	Counterexample string       `json:"counterexample,omitempty"`
	Obligations    []Obligation `json:"obligations,omitempty"`
}

// Certificate is the machine-readable result of validating one compile.
// It contains no timestamps or host details: the same compile must
// yield byte-identical certificates on every run and thread count.
type Certificate struct {
	Schema  string `json:"schema"`
	Program string `json:"program"`
	Target  string `json:"target"`
	// SourceSHA256 and P4SHA256 bind the certificate to the exact
	// source text and rendered P4 program it certifies.
	SourceSHA256 string `json:"source_sha256"`
	P4SHA256     string `json:"p4_sha256"`
	Verdict      string `json:"verdict"`

	Symbolics   []SymbolicValue   `json:"symbolics"`
	Equivalence EquivalenceReport `json:"equivalence"`
	Audit       AuditResult       `json:"audit"`
	// BoundsWarnings carries check.Bounds findings (advisory; they do
	// not affect the verdict — p4allc -bounds=error promotes them).
	BoundsWarnings []string `json:"bounds_warnings,omitempty"`
}

// Proved reports whether every obligation was discharged.
func (c *Certificate) Proved() bool { return c.Verdict == VerdictProved }

// JSON renders the certificate as stable, indented JSON with a
// trailing newline. All slices are sorted before marshaling, so equal
// certificates are byte-equal.
func (c *Certificate) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Summary is a one-line human rendering for CLI output.
func (c *Certificate) Summary() string {
	return fmt.Sprintf("tv: %s: verdict=%s paths=%d proved=%d pruned=%d obligations=%d audit-checks=%d",
		c.Program, c.Verdict, c.Equivalence.Paths, c.Equivalence.PathsProved,
		c.Equivalence.PrunedDecisions, len(c.Equivalence.Obligations), len(c.Audit.Checks))
}

func sha256Hex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return fmt.Sprintf("%x", sum)
}

// obligations converts the failure tally into the certificate's sorted
// listing.
func obligations(failures map[failure]int) []Obligation {
	out := make([]Obligation, 0, len(failures))
	for f, n := range failures {
		out = append(out, Obligation{Kind: f.Kind, Detail: f.Detail, Paths: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}
