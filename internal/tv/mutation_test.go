package tv

import (
	"strings"
	"sync"
	"testing"

	"p4all/internal/codegen"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/modules"
	"p4all/internal/pisa"
)

// The adversarial miscompile suite: every mutation below injects a bug
// codegen could plausibly have — a wrong computed value, an action
// scheduled in the wrong stage, a dropped invocation guard, a narrowed
// width, a missing or extra apply step — and the validator must reject
// every mutant. A mutant that certifies proved is a hole in the
// equivalence proof.

var mutationBase struct {
	sync.Once
	u      *lang.Unit
	layout *ilpgen.Layout
}

// mutationCompile solves the CMS program once; each mutant rebuilds the
// cheap Concrete IR from the shared layout and corrupts its own copy.
func mutationCompile(t *testing.T) (*lang.Unit, *ilpgen.Layout, *codegen.Concrete) {
	t.Helper()
	mutationBase.Do(func() {
		u, layout, _ := compileFor(t, modules.StandaloneCMS(), pisa.EvalTarget(pisa.Mb/4))
		mutationBase.u, mutationBase.layout = u, layout
	})
	if mutationBase.u == nil {
		t.Fatal("base compile failed")
	}
	prog, err := codegen.Build(mutationBase.u, mutationBase.layout)
	if err != nil {
		t.Fatal(err)
	}
	return mutationBase.u, mutationBase.layout, prog
}

func mustReject(t *testing.T, u *lang.Unit, layout *ilpgen.Layout, prog *codegen.Concrete, mutant string) *Certificate {
	t.Helper()
	cert := Validate(u, layout, prog, Options{Name: "mutant-" + mutant})
	if cert.Proved() {
		t.Fatalf("mutant %q certified proved: %s", mutant, cert.Summary())
	}
	return cert
}

// firstArith finds an action whose body starts with an arithmetic
// assignment (the CMS incr actions do) and returns it.
func firstArith(t *testing.T, prog *codegen.Concrete) *codegen.CAction {
	t.Helper()
	for i := range prog.Actions {
		ca := &prog.Actions[i]
		if !strings.Contains(ca.Name, "incr") {
			continue
		}
		if len(ca.Body) > 0 {
			if _, ok := ca.Body[0].(*codegen.CAssign); ok {
				return ca
			}
		}
	}
	t.Fatal("no arithmetic action found")
	return nil
}

func TestMutantWrongValueRejected(t *testing.T) {
	u, layout, prog := mutationCompile(t)
	ca := firstArith(t, prog)
	asg := ca.Body[0].(*codegen.CAssign)
	asg.RHS = &codegen.CBinary{Op: lang.PLUS, X: asg.RHS, Y: &codegen.CInt{Value: 1}}
	mustReject(t, u, layout, prog, "wrong-value")
}

func TestMutantSwappedApplyStagesRejected(t *testing.T) {
	u, layout, prog := mutationCompile(t)
	i, j := -1, -1
	for k := range prog.Apply {
		if prog.Apply[k].Action == "" {
			continue
		}
		if i < 0 {
			i = k
		} else if prog.Apply[k].Stage != prog.Apply[i].Stage {
			j = k
			break
		}
	}
	if j < 0 {
		t.Skip("layout placed everything in one stage")
	}
	prog.Apply[i].Stage, prog.Apply[j].Stage = prog.Apply[j].Stage, prog.Apply[i].Stage
	cert := mustReject(t, u, layout, prog, "swapped-apply-stage")
	found := false
	for _, ob := range cert.Equivalence.Obligations {
		if ob.Kind == "apply-mismatch" {
			found = true
		}
	}
	if !found {
		t.Errorf("no apply-mismatch obligation: %+v", cert.Equivalence.Obligations)
	}
}

func TestMutantRestagedActionRejected(t *testing.T) {
	// Moving only the emitted action's @stage annotation (the apply
	// block untouched) must still fail: the per-stage ALU charge moves.
	u, layout, prog := mutationCompile(t)
	ca := firstArith(t, prog)
	ca.Stage = (ca.Stage + 1) % layout.Target.Stages
	mustReject(t, u, layout, prog, "restaged-action")
}

func TestMutantDroppedGuardRejected(t *testing.T) {
	u, layout, prog := mutationCompile(t)
	mutated := false
	for k := range prog.Apply {
		if len(prog.Apply[k].Guards) > 0 {
			prog.Apply[k].Guards = nil
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no guarded apply step to mutate")
	}
	mustReject(t, u, layout, prog, "dropped-guard")
}

func TestMutantNarrowedRegisterWidthRejected(t *testing.T) {
	u, layout, prog := mutationCompile(t)
	ca := firstArith(t, prog)
	narrowed := false
	var narrow func(e codegen.CExpr)
	narrow = func(e codegen.CExpr) {
		switch e := e.(type) {
		case *codegen.CRegRef:
			e.Width = e.Width / 2
			narrowed = true
		case *codegen.CBinary:
			narrow(e.X)
			narrow(e.Y)
		case *codegen.CUnary:
			narrow(e.X)
		case *codegen.CCall:
			for _, a := range e.Args {
				narrow(a)
			}
		}
	}
	for _, s := range ca.Body {
		if asg, ok := s.(*codegen.CAssign); ok {
			narrow(asg.LHS)
			narrow(asg.RHS)
		}
	}
	if !narrowed {
		t.Fatal("no register reference to narrow")
	}
	mustReject(t, u, layout, prog, "narrowed-width")
}

func TestMutantDroppedApplyStepRejected(t *testing.T) {
	u, layout, prog := mutationCompile(t)
	prog.Apply = prog.Apply[:len(prog.Apply)-1]
	cert := mustReject(t, u, layout, prog, "dropped-apply-step")
	found := false
	for _, ob := range cert.Equivalence.Obligations {
		if ob.Kind == "apply-mismatch" {
			found = true
		}
	}
	if !found {
		t.Errorf("no apply-mismatch obligation: %+v", cert.Equivalence.Obligations)
	}
}

func TestMutantMissingActionRejected(t *testing.T) {
	u, layout, prog := mutationCompile(t)
	name := firstArith(t, prog).Name
	kept := prog.Actions[:0]
	for _, ca := range prog.Actions {
		if ca.Name != name {
			kept = append(kept, ca)
		}
	}
	prog.Actions = kept
	mustReject(t, u, layout, prog, "missing-action")
}

// ---- layout tampering: the independent audit must catch it ----

func cloneLayout(l *ilpgen.Layout) *ilpgen.Layout {
	c := *l
	c.Symbolics = make(map[string]int64, len(l.Symbolics))
	for k, v := range l.Symbolics {
		c.Symbolics[k] = v
	}
	c.Placements = append([]ilpgen.Placement(nil), l.Placements...)
	c.Registers = make([]ilpgen.RegPlacement, len(l.Registers))
	for i, rp := range l.Registers {
		c.Registers[i] = rp
		c.Registers[i].Stages = append([]int(nil), rp.Stages...)
		c.Registers[i].Bits = make(map[int]int64, len(rp.Bits))
		for s, b := range rp.Bits {
			c.Registers[i].Bits[s] = b
		}
	}
	c.Stages = append([]ilpgen.StageUse(nil), l.Stages...)
	return &c
}

func auditMustFail(t *testing.T, u *lang.Unit, layout *ilpgen.Layout, mutant string) {
	t.Helper()
	res := Audit(u, layout)
	if !res.Failed() {
		t.Fatalf("audit passed tampered layout %q", mutant)
	}
}

func TestAuditRejectsInflatedRegisterBits(t *testing.T) {
	u, layout, _ := mutationCompile(t)
	l := cloneLayout(layout)
	rp := &l.Registers[0]
	rp.Bits[rp.Stages[0]] += int64(rp.Width)
	auditMustFail(t, u, l, "inflated-bits")
}

func TestAuditRejectsMovedPlacement(t *testing.T) {
	u, layout, _ := mutationCompile(t)
	l := cloneLayout(layout)
	moved := false
	for i := range l.Placements {
		if l.Placements[i].Stage > 0 {
			l.Placements[i].Stage = 0
			moved = true
			break
		}
	}
	if !moved {
		t.Skip("single-stage layout")
	}
	auditMustFail(t, u, l, "moved-placement")
}

func TestAuditRejectsTamperedSymbolic(t *testing.T) {
	u, layout, _ := mutationCompile(t)
	l := cloneLayout(layout)
	// A solved value out of sync with the placements: the rebuilt
	// instance set no longer matches the placement bijection.
	l.Symbolics["cms_rows"] = l.Symbolics["cms_rows"] + 7
	auditMustFail(t, u, l, "tampered-symbolic")
}
