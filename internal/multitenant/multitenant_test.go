package multitenant

import (
	"testing"
	"time"

	"p4all/internal/apps"
	"p4all/internal/modules"
	"p4all/internal/pisa"
)

// mtTarget is sized so the acceptance mix fits but contends: three
// tenants' floors are satisfiable with memory left over to trade.
func mtTarget() pisa.Target {
	return pisa.Target{
		Name: "mt-test", Stages: 8, MemoryBits: 1 << 18,
		StatefulALUs: 8, StatelessALUs: 64, PHVBits: 16 * 1024,
	}
}

func smallMix() []Tenant {
	return []Tenant{
		{Name: "alpha", Source: modules.StandaloneCMS()},
		{Name: "beta", Source: modules.StandaloneKVS()},
	}
}

// fastOpts bounds the search for tests whose assertions hold for any
// feasible incumbent (floors and assumes are hard constraints).
func fastOpts() Options {
	var o Options
	o.SkipCodegen = true
	o.Solver.NodeLimit = 500
	o.Solver.TimeLimit = 20 * time.Second
	return o
}

// TestCompileTwoTenants: the basic joint pipeline end to end, codegen
// included — each tenant gets its own P4 program mentioning only its
// own registers.
func TestCompileTwoTenants(t *testing.T) {
	mix := smallMix()
	// Identical-slope linear utilities tie at corners; the floors force
	// a genuinely shared pipeline.
	mix[0].MinUtility = 2048
	mix[1].MinUtility = 2048
	res, err := Compile(mix, mtTarget(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("got %d tenant results", len(res.Tenants))
	}
	a, b := res.Tenant("alpha"), res.Tenant("beta")
	if a == nil || b == nil {
		t.Fatal("missing tenant result")
	}
	if a.P4 == "" || b.P4 == "" {
		t.Fatal("codegen skipped unexpectedly")
	}
	if a.Layout.Symbolic("cms_rows") < 1 {
		t.Errorf("alpha cms_rows = %d", a.Layout.Symbolic("cms_rows"))
	}
	if b.Layout.Symbolic("kv_parts") < 1 {
		t.Errorf("beta kv_parts = %d", b.Layout.Symbolic("kv_parts"))
	}
}

// TestCompileAcceptanceMix is the PR's acceptance scenario: NetCache,
// SketchLearn, and the new FlowRadar module mix compile into one
// layout with every tenant's assume floor honored.
func TestCompileAcceptanceMix(t *testing.T) {
	mix := []Tenant{
		{Name: "netcache", Source: apps.NetCache(apps.NetCacheConfig{}).Source},
		{Name: "sketchlearn", Source: apps.SketchLearn().Source},
		{Name: "flowradar", Source: apps.FlowRadar().Source},
	}
	opts := fastOpts()
	opts.Solver.NodeLimit = 1500
	opts.Solver.TimeLimit = 120 * time.Second
	res, err := Compile(mix, pisa.EvalTarget(pisa.Mb), opts)
	if err != nil {
		t.Fatal(err)
	}
	nc := res.Tenant("netcache").Layout
	if nc.Symbolic("cms_rows") < 2 || nc.Symbolic("kv_slots") < 1024 {
		t.Errorf("netcache floors: rows=%d slots=%d", nc.Symbolic("cms_rows"), nc.Symbolic("kv_slots"))
	}
	sl := res.Tenant("sketchlearn").Layout
	for l := 0; l < 4; l++ {
		name := "lv" + string(rune('0'+l)) + "_rows"
		if sl.Symbolic(name) < 1 {
			t.Errorf("sketchlearn %s = %d", name, sl.Symbolic(name))
		}
	}
	fr := res.Tenant("flowradar").Layout
	if fr.Symbolic("fr_ct_rows") < 1 || fr.Symbolic("fr_bf_bits") < 1024 {
		t.Errorf("flowradar floors: ct_rows=%d bf_bits=%d", fr.Symbolic("fr_ct_rows"), fr.Symbolic("fr_bf_bits"))
	}
	// The joint layout respects the physical budgets tenant-summed, to
	// within the solver's relative feasibility tolerance (1e-6 of the
	// budget — about one bit per megabit stage; see JointLayout.Stages).
	slack := int64(res.Target.MemoryBits)/1_000_000 + 1
	for s, use := range res.Layout.Stages {
		if use.MemoryBits > int64(res.Target.MemoryBits)+slack {
			t.Errorf("stage %d over memory: %d (budget %d + slack %d)", s, use.MemoryBits, res.Target.MemoryBits, slack)
		}
	}
	for _, tr := range res.Tenants {
		if tr.Utility <= 0 {
			t.Errorf("tenant %s utility %g", tr.Name, tr.Utility)
		}
	}
}

// TestCompileCertifies: per-tenant translation validation proves each
// tenant's emitted program equivalent to its source at the allocated
// sizes.
func TestCompileCertifies(t *testing.T) {
	res, err := Compile(smallMix(), mtTarget(), Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Certificate == nil {
			t.Fatalf("tenant %s: no certificate", tr.Name)
		}
		if !tr.Certificate.Proved() {
			t.Errorf("tenant %s: verdict %s", tr.Name, tr.Certificate.Verdict)
		}
	}
}

// TestCompileRejectsBadTenants: duplicate and reserved names, and
// negative non-sentinel weights, fail loudly before any solving.
func TestCompileRejectsBadTenants(t *testing.T) {
	tgt := mtTarget()
	cases := map[string][]Tenant{
		"duplicate name": {
			{Name: "a", Source: modules.StandaloneCMS()},
			{Name: "a", Source: modules.StandaloneKVS()},
		},
		"reserved name": {{Name: "joint", Source: modules.StandaloneCMS()}},
		"slash in name": {{Name: "a/b", Source: modules.StandaloneCMS()}},
		"bad weight":    {{Name: "a", Source: modules.StandaloneCMS(), Weight: -0.5}},
		"empty mix":     {},
	}
	for label, mix := range cases {
		if _, err := Compile(mix, tgt, Options{SkipCodegen: true}); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

// TestReweightGrowsFavoredTenant: the drift scenario — same mix, new
// weights — strictly grows the newly-favored tenant through the
// Compiler's warm path.
func TestReweightGrowsFavoredTenant(t *testing.T) {
	tgt := pisa.Target{
		Name: "mt-tight", Stages: 6, MemoryBits: 64 * 1024,
		StatefulALUs: 6, StatelessALUs: 32, PHVBits: 8 * 1024,
	}
	c := NewCompiler(tgt, Options{SkipCodegen: true})
	mix := func(wa, wb float64) []Tenant {
		return []Tenant{
			{Name: "a", Source: modules.StandaloneCMS(), Weight: wa},
			{Name: "b", Source: modules.StandaloneCountingTable(), Weight: wb},
		}
	}
	before, err := c.Compile(mix(1, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	after, err := c.Compile(mix(0.25, 1))
	if err != nil {
		t.Fatal(err)
	}
	if after.Tenant("b").Utility <= before.Tenant("b").Utility {
		t.Errorf("favored tenant b did not grow: %g -> %g",
			before.Tenant("b").Utility, after.Tenant("b").Utility)
	}
}

// TestWarmResolveSubSecond pins the elastic-reallocation latency: the
// second compile of the same mix (reweighted) must complete in under a
// second, riding the warm-start pool. The budget is generous against
// CI noise; BenchmarkMultiTenantResolve tracks the real number.
func TestWarmResolveSubSecond(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	c := NewCompiler(mtTarget(), Options{SkipCodegen: true})
	mix := func(w float64) []Tenant {
		ts := smallMix()
		ts[1].Weight = w
		return ts
	}
	if _, err := c.Compile(mix(1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Compile(mix(2)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("warm re-solve took %v, want < 1s", d)
	}
}

// TestUnweightedTenant: the Unweighted sentinel compiles the tenant
// without objective stake — and does not reject it.
func TestUnweightedTenant(t *testing.T) {
	mix := smallMix()
	mix[1].Weight = Unweighted
	mix[1].MinUtility = 2048
	res, err := Compile(mix, mtTarget(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Tenant("beta").Utility; u < 2048-1e-6 {
		t.Errorf("unweighted tenant below its floor: %g", u)
	}
}

// TestMaxMinCompile: the max-min mode runs through the full package
// path (distinct model shape: the extra z variable must not poison
// the pool of non-maxmin runs).
func TestMaxMinCompile(t *testing.T) {
	opts := fastOpts()
	opts.MaxMin = true
	res, err := Compile(smallMix(), mtTarget(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tenants {
		if tr.Utility <= 0 {
			t.Errorf("max-min starved tenant %s: %g", tr.Name, tr.Utility)
		}
	}
}
