// Package multitenant compiles K independent P4All programs — tenants
// — into one jointly-optimized PISA pipeline. Each tenant keeps its
// own source, its own utility, and its own namespace in the shared ILP
// (internal/ilpgen.GenerateJoint); the tenants meet only in the
// per-stage resource budget rows and a fairness objective over their
// utilities. The result is the elastic answer to switch multi-tenancy:
// instead of statically partitioning the pipeline, the compiler trades
// memory, ALUs, and PHV bits between tenants by weight, re-solving the
// joint model as weights drift (internal/elastic reuses the warm-start
// pool here for sub-second reallocation).
//
// Isolation is checked, not assumed: every compile runs
// check.ModelIsolation over the generated model and refuses to emit
// layouts from a model where any structural constraint couples two
// tenants.
package multitenant

import (
	"crypto/sha256"
	"fmt"
	"math"
	"sync"
	"time"

	"p4all/internal/check"
	"p4all/internal/codegen"
	"p4all/internal/ilp"
	"p4all/internal/ilpgen"
	"p4all/internal/lang"
	"p4all/internal/obs"
	"p4all/internal/pisa"
	"p4all/internal/tv"
	"p4all/internal/unroll"
)

// Unweighted is the Tenant.Weight sentinel for a true zero-weight
// tenant: it is compiled and placed (its assumes and MinUtility still
// hold) but contributes nothing to the objective — capacity is never
// traded toward it. The zero value of Weight means the default
// weight 1, so an explicit sentinel is needed to say "zero".
const Unweighted = -1

// Tenant is one program in a joint compile.
type Tenant struct {
	// Name namespaces the tenant in the joint model and in reports. It
	// must be nonempty, unique, must not contain '/', and must not be
	// the reserved scope "joint".
	Name string
	// Source is the tenant's complete P4All program.
	Source string
	// Weight is the tenant's share in the fairness objective. The zero
	// value means the default weight 1; Unweighted (-1) means weight 0.
	// Any other negative value is an error.
	Weight float64
	// MinUtility, when positive, adds a floor row: the tenant's
	// utility must reach at least this value in any accepted layout.
	MinUtility float64
}

// weight resolves the sentinel convention to the solver's weight.
func (t Tenant) weight() (float64, error) {
	switch {
	case t.Weight == 0:
		return 1, nil
	case t.Weight == Unweighted:
		return 0, nil
	case t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0):
		return 0, fmt.Errorf("multitenant: tenant %s weight %v is not positive (use multitenant.Unweighted for zero)", t.Name, t.Weight)
	default:
		return t.Weight, nil
	}
}

// Options configures a joint compilation.
type Options struct {
	// Solver tunes the branch-and-bound search; zero-valued fields get
	// the same defaults as a single-tenant compile (3% gap, 4000
	// nodes, 90 seconds).
	Solver ilp.Options
	// MaxMin switches the objective from the weighted sum to max-min
	// fairness over the weighted utilities (see ilpgen.Fairness).
	MaxMin bool
	// SkipCodegen stops after solving and isolation checking.
	SkipCodegen bool
	// Certify runs the translation validator per tenant and attaches
	// each equivalence certificate. Implies code generation.
	Certify bool
	// Tracer receives per-phase spans. Nil disables tracing.
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.Solver.Gap == 0 {
		o.Solver.Gap = 0.03
	} else if o.Solver.Gap < 0 {
		o.Solver.Gap = 0
	}
	if o.Solver.NodeLimit == 0 {
		o.Solver.NodeLimit = 4000
	}
	if o.Solver.TimeLimit == 0 {
		o.Solver.TimeLimit = 90 * time.Second
	}
	return o
}

// Phases records per-phase wall time of a joint compile.
type Phases struct {
	Parse    time.Duration
	Bounds   time.Duration
	Generate time.Duration
	Solve    time.Duration
	Isolate  time.Duration
	Codegen  time.Duration
	Certify  time.Duration
}

// Total returns the end-to-end compile time.
func (p Phases) Total() time.Duration {
	return p.Parse + p.Bounds + p.Generate + p.Solve + p.Isolate + p.Codegen + p.Certify
}

// TenantResult is one tenant's slice of a completed joint compile.
type TenantResult struct {
	Name    string
	Unit    *lang.Unit
	ILP     *ilpgen.ILP
	Layout  *ilpgen.Layout
	Utility float64
	// Concrete/P4 are the tenant's generated program (unless codegen
	// was skipped). Each tenant is emitted independently: its P4
	// mentions only its own registers, actions, and headers.
	Concrete *codegen.Concrete
	P4       string
	Warnings []check.Warning
	// Certificate is the tenant's translation-validation result
	// (Options.Certify).
	Certificate *tv.Certificate
}

// Result is a completed joint compilation.
type Result struct {
	Target  pisa.Target
	Joint   *ilpgen.Joint
	Layout  *ilpgen.JointLayout
	Tenants []*TenantResult
	Phases  Phases
}

// Tenant returns the named tenant's result, or nil.
func (r *Result) Tenant(name string) *TenantResult {
	for _, t := range r.Tenants {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Compile parses, jointly optimizes, isolation-checks, and (unless
// skipped) emits all tenants against one target.
func Compile(tenants []Tenant, target pisa.Target, opts Options) (*Result, error) {
	return compile(tenants, target, opts, nil)
}

// compile is the shared implementation; start, when non-nil, seeds the
// joint solve (the Compiler's warm pool path).
func compile(tenants []Tenant, target pisa.Target, opts Options, start []float64) (*Result, error) {
	opts = opts.withDefaults()
	if len(tenants) == 0 {
		return nil, fmt.Errorf("multitenant: no tenants")
	}
	root := opts.Tracer.StartSpan("multitenant.compile",
		obs.String("target", target.Name),
		obs.Int("tenants", len(tenants)))
	defer root.End()

	res := &Result{Target: target}
	weights := make([]float64, len(tenants))
	floors := make([]float64, len(tenants))
	for i, t := range tenants {
		w, err := t.weight()
		if err != nil {
			return nil, err
		}
		weights[i] = w
		floors[i] = t.MinUtility
	}

	// Front end, per tenant.
	begin := time.Now()
	sp := root.Child("parse")
	units := make([]*lang.Unit, len(tenants))
	for i, t := range tenants {
		u, err := lang.ParseAndResolve(t.Source)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("multitenant: tenant %s: front end: %w", t.Name, err)
		}
		units[i] = u
	}
	sp.End()
	res.Phases.Parse = time.Since(begin)

	begin = time.Now()
	sp = root.Child("bounds")
	tus := make([]ilpgen.TenantUnit, len(tenants))
	for i, t := range tenants {
		bounds, err := unroll.UpperBounds(units[i], &target)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("multitenant: tenant %s: unroll bounds: %w", t.Name, err)
		}
		tus[i] = ilpgen.TenantUnit{Name: t.Name, Unit: units[i], Bounds: bounds}
	}
	sp.End()
	res.Phases.Bounds = time.Since(begin)

	begin = time.Now()
	sp = root.Child("generate")
	joint, err := ilpgen.GenerateJoint(tus, &res.Target)
	if err != nil {
		sp.End()
		return nil, err
	}
	if err := joint.SetObjective(ilpgen.Fairness{
		Weights:    weights,
		MinUtility: floors,
		MaxMin:     opts.MaxMin,
	}); err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttrs(
		obs.Int("ilp_vars", joint.Model.NumVars()),
		obs.Int("ilp_constrs", joint.Model.NumConstrs()),
	)
	sp.End()
	res.Joint = joint
	res.Phases.Generate = time.Since(begin)

	// The isolation audit runs before the solve: a mis-partitioned
	// model taints every layout it could produce, so there is no point
	// paying for the search first.
	begin = time.Now()
	sp = root.Child("isolate")
	if vs := check.ModelIsolation(joint.Model, joint.Names); len(vs) > 0 {
		sp.End()
		return nil, fmt.Errorf("multitenant: model violates tenant isolation: %s (and %d more)", vs[0], len(vs)-1)
	}
	sp.End()
	res.Phases.Isolate = time.Since(begin)

	begin = time.Now()
	solver := opts.Solver
	solver.Start = start
	sp = root.Child("solve",
		obs.Int("ilp_vars", joint.Model.NumVars()),
		obs.Int("ilp_constrs", joint.Model.NumConstrs()))
	jl, err := joint.Solve(solver)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttrs(
		obs.Int("bnb_nodes", jl.Stats.Nodes),
		obs.Float("objective", jl.Objective),
		obs.Bool("warm_started", jl.Stats.WarmStarted),
	)
	sp.End()
	res.Layout = jl
	res.Phases.Solve = time.Since(begin)

	for i := range tenants {
		tr := &TenantResult{
			Name:     tenants[i].Name,
			Unit:     units[i],
			ILP:      joint.Tenants[i],
			Layout:   jl.Tenants[i],
			Utility:  jl.Utilities[i],
			Warnings: check.Bounds(units[i]),
		}
		res.Tenants = append(res.Tenants, tr)
	}

	if !opts.SkipCodegen || opts.Certify {
		begin = time.Now()
		sp = root.Child("codegen")
		for _, tr := range res.Tenants {
			concrete, err := codegen.Build(tr.Unit, tr.Layout)
			if err != nil {
				sp.End()
				return nil, fmt.Errorf("multitenant: tenant %s: code generation: %w", tr.Name, err)
			}
			tr.Concrete = concrete
			tr.P4 = codegen.Render(concrete)
		}
		sp.End()
		res.Phases.Codegen = time.Since(begin)
	}

	if opts.Certify {
		begin = time.Now()
		for _, tr := range res.Tenants {
			tr.Certificate = tv.Validate(tr.Unit, tr.Layout, tr.Concrete, tv.Options{
				Name:   tr.Name,
				Tracer: opts.Tracer,
			})
		}
		res.Phases.Certify = time.Since(begin)
	}
	return res, nil
}

// Compiler is a stateful joint compiler with a warm-start pool: for
// each tenant mix it remembers the last joint solution and seeds the
// next re-solve of the same mix with it. Re-solves after a weight or
// floor change — the elastic reallocation path — then typically finish
// at the root node. Safe for concurrent use.
type Compiler struct {
	Target pisa.Target
	Opts   Options

	mu   sync.Mutex
	pool map[string][]float64
}

// NewCompiler returns a Compiler for the target.
func NewCompiler(target pisa.Target, opts Options) *Compiler {
	return &Compiler{Target: target, Opts: opts, pool: make(map[string][]float64)}
}

// mixKey identifies a tenant mix up to model identity: the model's
// variables (and so warm-start alignment) are determined by the
// ordered tenant names and sources, the target, and the MaxMin flag
// (which adds a variable). Weights and floors do not enter: they only
// perturb the objective and add rows, which a warm start survives.
func (c *Compiler) mixKey(tenants []Tenant) string {
	h := sha256.New()
	fmt.Fprintf(h, "target=%s/%d/%d\nmaxmin=%v\n", c.Target.Name, c.Target.Stages, c.Target.MemoryBits, c.Opts.MaxMin)
	for _, t := range tenants {
		fmt.Fprintf(h, "tenant=%s\nlen=%d\n%s\n", t.Name, len(t.Source), t.Source)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Compile jointly compiles the mix, seeding the solve from the pool
// when the same mix was compiled before and banking the new solution.
func (c *Compiler) Compile(tenants []Tenant) (*Result, error) {
	key := c.mixKey(tenants)
	c.mu.Lock()
	start := c.pool[key]
	c.mu.Unlock()
	res, err := compile(tenants, c.Target, c.Opts, start)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.pool[key] = res.Layout.Values
	c.mu.Unlock()
	return res, nil
}
