package multitenant

import (
	"testing"
	"time"

	"p4all/internal/ilp"
)

// BenchmarkMultiTenantResolve measures the elastic-reallocation path
// through the Compiler's warm-start pool — the controller's
// reweight-on-drift scenario.
//
// Both variants run the fairness figure's solver knobs (10% gap, 1000
// nodes, 15s): the elastic controller reads allocations off the
// incumbent, and proving the last few percent under utility floors is
// the branch-and-bound worst case — it would dominate the measurement
// without changing a single allocation.
//
//   - nudge: the common drift case. The weight moves but the previous
//     allocation stays within the accepted gap, so the re-solve
//     terminates at the root on the warm incumbent. This is the PR's
//     sub-second reallocation claim and is gated in CI (cmd/benchgate).
//   - flip: the adversarial case. The weight change inverts which
//     tenant the objective favors, the warm incumbent is far from the
//     new optimum, and a real (bounded) tree search runs. Reported,
//     not gated: its cost is the solver's search budget, not a
//     regression surface.
func BenchmarkMultiTenantResolve(b *testing.B) {
	mix := func(w float64) []Tenant {
		ts := smallMix()
		ts[0].MinUtility = 2048
		ts[1].MinUtility = 2048
		ts[1].Weight = w
		return ts
	}
	newCompiler := func() *Compiler {
		return NewCompiler(mtTarget(), Options{
			Solver: ilp.Options{
				Deterministic: true,
				Gap:           0.1,
				NodeLimit:     1000,
				TimeLimit:     15 * time.Second,
			},
			SkipCodegen: true,
		})
	}
	run := func(b *testing.B, weights []float64) {
		c := newCompiler()
		if _, err := c.Compile(mix(weights[len(weights)-1])); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Compile(mix(weights[i%len(weights)]))
			if err != nil {
				b.Fatal(err)
			}
			if !res.Layout.Stats.WarmStarted {
				b.Fatal("re-solve did not warm-start")
			}
		}
	}
	b.Run("nudge", func(b *testing.B) { run(b, []float64{2, 2.5}) })
	b.Run("flip", func(b *testing.B) { run(b, []float64{2, 0.5}) })
}
