// Quickstart: compile the elastic count-min sketch from the module
// library for a PISA target and inspect what the compiler chose.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"p4all"
)

func main() {
	// An elastic program: the library CMS plus a utility function.
	// The compiler decides rows and cols.
	source := p4all.ComposeModules(
		`header pkt { bit<32> flow; }`,
		p4all.CountMinSketchModule(p4all.ModuleInstance{Prefix: "cms", Key: "pkt.flow"}),
		`
control main {
    apply {
        cms_update.apply();
    }
}

assume cms_rows >= 1 && cms_rows <= 4;
optimize cms_rows * cms_cols;
`)

	// The paper's evaluation target: 10 stages, 4 stateful ALUs, 100
	// stateless ALUs, 4096 PHV bits, 1 Mb of register memory per stage.
	target := p4all.EvalTarget(p4all.Mb)

	// Certify: true runs the translation validator after codegen and
	// attaches the equivalence certificate to the result (see
	// docs/TRANSLATION_VALIDATION.md).
	res, err := p4all.Compile(source, target, p4all.Options{Certify: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Certificate.Proved() {
		log.Fatalf("translation validation failed: %s", res.Certificate.Summary())
	}
	fmt.Printf("certificate: %s\n\n", res.Certificate.Summary())

	fmt.Println("== The compiler stretched the sketch to fit the target ==")
	fmt.Printf("cms_rows = %d\n", res.Layout.Symbolic("cms_rows"))
	fmt.Printf("cms_cols = %d\n", res.Layout.Symbolic("cms_cols"))
	fmt.Printf("compile time: %v (ILP: %d vars, %d constraints)\n\n",
		res.Phases.Total(), res.Layout.Stats.Vars, res.Layout.Stats.Constrs)

	fmt.Println("== Stage layout (Figure 7 style) ==")
	fmt.Println(res.Layout)

	fmt.Println("== First lines of the generated concrete P4 ==")
	lines := strings.SplitN(res.P4, "\n", 16)
	fmt.Println(strings.Join(lines[:min(15, len(lines))], "\n"))

	// Execute the compiled program on a few packets.
	pipe, err := p4all.NewPipeline(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Executing the compiled pipeline ==")
	for _, flow := range []uint64{7, 7, 7, 42} {
		out, err := pipe.Process(p4all.Packet{"pkt.flow": flow})
		if err != nil {
			log.Fatal(err)
		}
		est, _ := p4all.MetaValue(out, "cms_meta.min", -1)
		fmt.Printf("packet flow=%2d -> estimated count %d\n", flow, est)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
