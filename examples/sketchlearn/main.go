// SketchLearn: compile the multi-level sketch application, then use
// the compiler-chosen sketch shape to infer a heavy flow's key bits
// from bit-level frequency ratios — the statistical trick SketchLearn
// builds on.
//
//	go run ./examples/sketchlearn
package main

import (
	"fmt"
	"log"

	"p4all"
	"p4all/internal/apps"
	"p4all/internal/structures"
	"p4all/internal/workload"
)

func main() {
	app := apps.SketchLearn()
	// Certify forces codegen to run (the validator needs the concrete
	// program) even though this example never prints the P4 text.
	res, err := p4all.Compile(app.Source, p4all.EvalTarget(p4all.Mb),
		p4all.Options{SkipCodegen: true, Certify: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Certificate.Proved() {
		log.Fatalf("translation validation failed: %s", res.Certificate.Summary())
	}

	fmt.Println("== Compiled SketchLearn level shapes ==")
	rows := int(res.Layout.Symbolic("lv0_rows"))
	cols := int(res.Layout.Symbolic("lv0_cols"))
	for l := 0; l < 4; l++ {
		fmt.Printf("level %d: %d x %d counters\n",
			l, res.Layout.Symbolic(fmt.Sprintf("lv%d_rows", l)), res.Layout.Symbolic(fmt.Sprintf("lv%d_cols", l)))
	}

	// Build the behavioral hierarchical sketch at the compiled shape
	// and push a skewed trace with one known heavy flow through it.
	const keyBits = 16
	hs, err := structures.NewHierarchicalSketch(keyBits, rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	const heavy = uint64(0xA5C3)
	trace := workload.Trace(workload.TraceConfig{Seed: 9, Flows: 4096, Skew: 1.0, Packets: 40000})
	for _, p := range trace {
		hs.Update(p.Flow)
	}
	for i := 0; i < 8000; i++ {
		hs.Update(heavy)
	}

	fmt.Printf("\n== Inferring the heavy flow's bits (true key %#x) ==\n", heavy)
	ratios := hs.BitRatio(heavy)
	var inferred uint64
	for b := 0; b < keyBits; b++ {
		if ratios[b] > 0.5 {
			inferred |= 1 << b
		}
	}
	fmt.Printf("bit ratios: ")
	for b := keyBits - 1; b >= 0; b-- {
		fmt.Printf("%.2f ", ratios[b])
	}
	fmt.Printf("\ninferred key: %#x\n", inferred)
	if inferred == heavy {
		fmt.Println("bit-level inference recovered the heavy flow exactly")
	} else {
		fmt.Printf("inference differs in %d bit(s) — expected occasionally under heavy collision\n",
			popcount(inferred^heavy))
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
