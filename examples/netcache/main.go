// NetCache end-to-end: compile the elastic NetCache application
// (count-min sketch + key-value store + forwarding), show the layout
// the utility function selected, and measure the cache hit rate the
// chosen shapes achieve on a Zipf workload — connecting the paper's
// Figure 7 layout to its Figure 4 quality surface.
//
//	go run ./examples/netcache
package main

import (
	"fmt"
	"log"

	"p4all"
	"p4all/internal/apps"
	"p4all/internal/eval"
	"p4all/internal/pisa"
)

func main() {
	app := apps.NetCache(apps.NetCacheConfig{})
	fmt.Printf("NetCache in P4All: %d source lines (elastic)\n\n", eval.CountLoC(app.Source))

	target := p4all.EvalTarget(7 * pisa.Mb / 4) // the paper's 1.75 Mb/stage
	res, err := p4all.Compile(app.Source, target, p4all.Options{Certify: true})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Certificate.Proved() {
		log.Fatalf("translation validation failed: %s", res.Certificate.Summary())
	}

	l := res.Layout
	fmt.Println("== Optimal layout (utility 0.4*cms + 0.6*kv) ==")
	fmt.Println(l)
	fmt.Printf("generated concrete P4: %d lines\ncompile time: %v\n\n",
		eval.CountLoC(res.P4), res.Phases.Total())

	// Feed the chosen shapes to the behavioral quality simulation.
	rows := int(l.Symbolic("cms_rows"))
	cols := int(l.Symbolic("cms_cols"))
	items := int(l.Symbolic("kv_parts") * l.Symbolic("kv_slots"))
	cfg := eval.DefaultFig4Config()
	budget := int64(rows*cols)*32 + int64(items)*64
	pts := eval.Figure4(cfg, budget, []int{rows}, []float64{float64(int64(items)*64) / float64(budget)})
	if len(pts) == 0 {
		log.Fatal("degenerate shapes")
	}
	fmt.Printf("== Cache quality with the compiler's shapes ==\n")
	fmt.Printf("cms %dx%d + kv %d items -> hit rate %.3f on Zipf(%.2f) over %d keys\n",
		rows, cols, items, pts[0].HitRate, cfg.Zipf, cfg.Keys)

	// Compare against a deliberately bad split (CMS hoards the memory).
	bad := eval.Figure4(cfg, budget, []int{4}, []float64{0.05})
	if len(bad) > 0 {
		fmt.Printf("versus a CMS-heavy split of the same budget: hit rate %.3f\n", bad[0].HitRate)
	}
}
