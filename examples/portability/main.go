// Portability: the same elastic program recompiled for three different
// PISA targets — the compiler re-stretches the data structures for each
// (the paper's §8 portability claim).
//
//	go run ./examples/portability
package main

import (
	"fmt"
	"log"

	"p4all"
)

func main() {
	source := p4all.ComposeModules(
		`header pkt { bit<32> flow; }`,
		p4all.CountMinSketchModule(p4all.ModuleInstance{Prefix: "cms", Key: "pkt.flow"}),
		p4all.BloomFilterModule(p4all.ModuleInstance{Prefix: "bf", Key: "pkt.flow", Seed: 32}),
		`
control main {
    apply {
        cms_update.apply();
        bf_check.apply();
    }
}

assume cms_rows >= 1 && cms_rows <= 4;
assume bf_rows >= 1 && bf_rows <= 3;
assume bf_bits >= 64;

optimize 0.5 * (cms_rows * cms_cols) + 0.5 * (bf_rows * bf_bits);
`)

	edge := p4all.Target{ // a small edge switch
		Name: "edge-switch", Stages: 5, MemoryBits: 64 * 1024,
		StatefulALUs: 2, StatelessALUs: 6, PHVBits: 4096,
	}
	targets := []p4all.Target{
		edge,                       // 5 stages, 64 Kb/stage
		p4all.EvalTarget(p4all.Mb), // 10 stages, 1 Mb/stage
		p4all.TofinoLike(),         // 12 stages, 1.5 Mb/stage, hash units
	}

	fmt.Println("One elastic program, three targets:")
	fmt.Printf("%-18s %9s %9s %9s %9s %12s\n",
		"target", "cms_rows", "cms_cols", "bf_rows", "bf_bits", "compile")
	for _, tgt := range targets {
		res, err := p4all.Compile(source, tgt, p4all.Options{Certify: true})
		if err != nil {
			log.Fatalf("%s: %v", tgt.Name, err)
		}
		if !res.Certificate.Proved() {
			log.Fatalf("%s: translation validation failed: %s", tgt.Name, res.Certificate.Summary())
		}
		l := res.Layout
		fmt.Printf("%-18s %9d %9d %9d %9d %12v\n",
			tgt.Name,
			l.Symbolic("cms_rows"), l.Symbolic("cms_cols"),
			l.Symbolic("bf_rows"), l.Symbolic("bf_bits"),
			res.Phases.Total().Round(1000000))
	}
	fmt.Println("\nNo source changes between rows — elasticity is what makes the module reusable.")
}
