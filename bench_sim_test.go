// Benchmarks for the behavioral pipeline's three execution engines:
// the reference AST interpreter, the compiled closure plan
// (internal/sim/plan.go), and the bytecode VM (internal/sim/vm.go);
// see docs/SIM_PERF.md. Each of the four suite apps runs under every
// engine so the compiled engines' speedups and zero-allocation steady
// states are measured where they matter — BenchmarkSimReplay and
// BenchmarkSimReplayVM feed cmd/benchgate's allocs/op gate, and
// BenchmarkSimReplayVM is additionally held to >=1.5x the plan's
// pkts/sec by the same-run cross-engine ratio gate.
package p4all_test

import (
	"sync"
	"testing"

	"p4all/internal/core"
	"p4all/internal/difftest"
	"p4all/internal/ilp"
	"p4all/internal/pisa"
	"p4all/internal/sim"
)

// simBenchStreamN packets per replay, a stream long enough that frame
// setup amortizes but short enough for -benchtime=3x runs.
const simBenchStreamN = 4096

var simBench struct {
	sync.Once
	compiled map[string]*core.Result
	streams  map[string][]sim.Packet
	err      error
}

// simBenchSetup compiles the difftest suite once per process (the
// solves dominate otherwise) and generates one deterministic stream
// per app.
func simBenchSetup(b *testing.B) (map[string]*core.Result, map[string][]sim.Packet) {
	b.Helper()
	simBench.Do(func() {
		simBench.compiled = make(map[string]*core.Result)
		simBench.streams = make(map[string][]sim.Packet)
		opts := core.Options{Solver: ilp.Options{Deterministic: true, Gap: 0.1}, SkipCodegen: true}
		for _, spec := range difftest.Specs() {
			res, err := core.Compile(spec.Source, pisa.EvalTarget(pisa.Mb), opts)
			if err != nil {
				simBench.err = err
				return
			}
			simBench.compiled[spec.Name] = res
			simBench.streams[spec.Name] = difftest.GenStream(spec, 1, simBenchStreamN)
		}
	})
	if simBench.err != nil {
		b.Fatal(simBench.err)
	}
	return simBench.compiled, simBench.streams
}

func simBenchEngines() []sim.Engine {
	return []sim.Engine{sim.EngineInterp, sim.EnginePlan, sim.EngineVM}
}

// newBenchPipeline builds a pipeline for one (app, engine) cell and
// fails the benchmark if a compiled engine silently fell back.
func newBenchPipeline(b *testing.B, res *core.Result, eng sim.Engine) *sim.Pipeline {
	b.Helper()
	pipe, err := sim.NewEngine(res.Unit, res.Layout, eng)
	if err != nil {
		b.Fatal(err)
	}
	if eng != sim.EngineInterp && pipe.EngineName() != eng.String() {
		b.Fatalf("%s compiler fell back: %v", eng, pipe.Fallback())
	}
	return pipe
}

// BenchmarkSimProcess measures the per-packet compatibility API (one
// output map per call) on each app under both engines.
func BenchmarkSimProcess(b *testing.B) {
	compiled, streams := simBenchSetup(b)
	for _, spec := range difftest.Specs() {
		res, stream := compiled[spec.Name], streams[spec.Name]
		for _, eng := range simBenchEngines() {
			eng := eng
			b.Run(spec.Name+"/engine="+eng.String(), func(b *testing.B) {
				pipe := newBenchPipeline(b, res, eng)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipe.Process(stream[i%len(stream)]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
			})
		}
	}
}

// BenchmarkSimReplay measures the batched API: one op is a full
// 4096-packet replay whose sink reads the app's key field through the
// slot view. On the plan engine this is the zero-allocation steady
// state the acceptance gate pins (allocs/op must stay 0).
func BenchmarkSimReplay(b *testing.B) {
	compiled, streams := simBenchSetup(b)
	for _, spec := range difftest.Specs() {
		res, stream := compiled[spec.Name], streams[spec.Name]
		key := sim.Key(spec.Fields[0].Name, -1)
		for _, eng := range simBenchEngines() {
			eng := eng
			b.Run(spec.Name+"/engine="+eng.String(), func(b *testing.B) {
				pipe := newBenchPipeline(b, res, eng)
				var sum uint64
				sink := func(i int, v sim.View) error {
					val, _ := v.Get(key)
					sum += val
					return nil
				}
				// One warm-up replay settles lazily-grown state before
				// the allocation count starts.
				if err := pipe.Replay(stream, sink); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := pipe.Replay(stream, sink); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
				_ = sum
			})
		}
	}
}

// BenchmarkSimReplayVM measures the VM's batched struct-of-arrays
// replay on the same streams and sink as BenchmarkSimReplay, one
// sub-benchmark per app. It is kept a separate top-level family so
// cmd/benchgate can pair BenchmarkSimReplayVM/<app> against
// BenchmarkSimReplay/<app>/engine=plan from the same run and enforce
// the >=1.5x pkts/sec ratio hermetically (-vmratio); allocs/op is
// pinned at zero like the plan's.
func BenchmarkSimReplayVM(b *testing.B) {
	compiled, streams := simBenchSetup(b)
	for _, spec := range difftest.Specs() {
		res, stream := compiled[spec.Name], streams[spec.Name]
		key := sim.Key(spec.Fields[0].Name, -1)
		b.Run(spec.Name, func(b *testing.B) {
			pipe := newBenchPipeline(b, res, sim.EngineVM)
			var sum uint64
			sink := func(i int, v sim.View) error {
				val, _ := v.Get(key)
				sum += val
				return nil
			}
			if err := pipe.Replay(stream, sink); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pipe.Replay(stream, sink); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
			_ = sum
		})
	}
}
