// Benchmarks for the behavioral pipeline's two execution engines: the
// reference AST interpreter and the compiled closure plan
// (internal/sim/plan.go, docs/SIM_PERF.md). Each of the four suite
// apps runs under both engines so the plan's speedup and its
// zero-allocation steady state are measured where they matter —
// BenchmarkSimReplay/*engine=plan feeds the allocs/op gate in
// cmd/benchgate.
package p4all_test

import (
	"sync"
	"testing"

	"p4all/internal/core"
	"p4all/internal/difftest"
	"p4all/internal/ilp"
	"p4all/internal/pisa"
	"p4all/internal/sim"
)

// simBenchStreamN packets per replay, a stream long enough that frame
// setup amortizes but short enough for -benchtime=3x runs.
const simBenchStreamN = 4096

var simBench struct {
	sync.Once
	compiled map[string]*core.Result
	streams  map[string][]sim.Packet
	err      error
}

// simBenchSetup compiles the difftest suite once per process (the
// solves dominate otherwise) and generates one deterministic stream
// per app.
func simBenchSetup(b *testing.B) (map[string]*core.Result, map[string][]sim.Packet) {
	b.Helper()
	simBench.Do(func() {
		simBench.compiled = make(map[string]*core.Result)
		simBench.streams = make(map[string][]sim.Packet)
		opts := core.Options{Solver: ilp.Options{Deterministic: true, Gap: 0.1}, SkipCodegen: true}
		for _, spec := range difftest.Specs() {
			res, err := core.Compile(spec.Source, pisa.EvalTarget(pisa.Mb), opts)
			if err != nil {
				simBench.err = err
				return
			}
			simBench.compiled[spec.Name] = res
			simBench.streams[spec.Name] = difftest.GenStream(spec, 1, simBenchStreamN)
		}
	})
	if simBench.err != nil {
		b.Fatal(simBench.err)
	}
	return simBench.compiled, simBench.streams
}

func simBenchEngines() []sim.Engine {
	return []sim.Engine{sim.EngineInterp, sim.EnginePlan}
}

// newBenchPipeline builds a pipeline for one (app, engine) cell and
// fails the benchmark if the plan compiler silently fell back.
func newBenchPipeline(b *testing.B, res *core.Result, eng sim.Engine) *sim.Pipeline {
	b.Helper()
	pipe, err := sim.NewEngine(res.Unit, res.Layout, eng)
	if err != nil {
		b.Fatal(err)
	}
	if eng == sim.EnginePlan && pipe.EngineName() != "plan" {
		b.Fatalf("plan compiler fell back: %v", pipe.PlanFallback())
	}
	return pipe
}

// BenchmarkSimProcess measures the per-packet compatibility API (one
// output map per call) on each app under both engines.
func BenchmarkSimProcess(b *testing.B) {
	compiled, streams := simBenchSetup(b)
	for _, spec := range difftest.Specs() {
		res, stream := compiled[spec.Name], streams[spec.Name]
		for _, eng := range simBenchEngines() {
			eng := eng
			b.Run(spec.Name+"/engine="+eng.String(), func(b *testing.B) {
				pipe := newBenchPipeline(b, res, eng)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipe.Process(stream[i%len(stream)]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
			})
		}
	}
}

// BenchmarkSimReplay measures the batched API: one op is a full
// 4096-packet replay whose sink reads the app's key field through the
// slot view. On the plan engine this is the zero-allocation steady
// state the acceptance gate pins (allocs/op must stay 0).
func BenchmarkSimReplay(b *testing.B) {
	compiled, streams := simBenchSetup(b)
	for _, spec := range difftest.Specs() {
		res, stream := compiled[spec.Name], streams[spec.Name]
		key := sim.Key(spec.Fields[0].Name, -1)
		for _, eng := range simBenchEngines() {
			eng := eng
			b.Run(spec.Name+"/engine="+eng.String(), func(b *testing.B) {
				pipe := newBenchPipeline(b, res, eng)
				var sum uint64
				sink := func(i int, v sim.View) error {
					val, _ := v.Get(key)
					sum += val
					return nil
				}
				// One warm-up replay settles lazily-grown state before
				// the allocation count starts.
				if err := pipe.Replay(stream, sink); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := pipe.Replay(stream, sink); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
				_ = sum
			})
		}
	}
}
