package p4all_test

import (
	"errors"
	"testing"

	"p4all"
)

func TestPublicAPICompileAndRun(t *testing.T) {
	source := p4all.ComposeModules(
		`header pkt { bit<32> flow; }`,
		p4all.CountMinSketchModule(p4all.ModuleInstance{Prefix: "cms", Key: "pkt.flow"}),
		`
control main {
    apply {
        cms_update.apply();
    }
}
assume cms_rows >= 1 && cms_rows <= 3;
optimize cms_rows * cms_cols;
`)
	res, err := p4all.Compile(source, p4all.EvalTarget(p4all.Mb/4), p4all.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout.Symbolic("cms_rows") < 1 {
		t.Fatalf("rows = %d", res.Layout.Symbolic("cms_rows"))
	}
	if res.P4 == "" {
		t.Error("no generated P4")
	}
	pipe, err := p4all.NewPipeline(res)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pipe.Process(p4all.Packet{"pkt.flow": 5})
	if err != nil {
		t.Fatal(err)
	}
	if est, ok := p4all.MetaValue(out, "cms_meta.min", -1); !ok || est != 1 {
		t.Errorf("estimate = %d (%v), want 1", est, ok)
	}
}

func TestPublicAPIInfeasible(t *testing.T) {
	source := p4all.ComposeModules(
		`header pkt { bit<32> flow; }`,
		p4all.CountMinSketchModule(p4all.ModuleInstance{Prefix: "cms", Key: "pkt.flow"}),
		`
control main { apply { cms_update.apply(); } }
assume cms_rows >= 100;
optimize cms_rows;
`)
	_, err := p4all.Compile(source, p4all.RunningExampleTarget(), p4all.Options{})
	if !errors.Is(err, p4all.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPublicAPIModuleFragments(t *testing.T) {
	inst := p4all.ModuleInstance{Prefix: "m", Key: "pkt.flow"}
	for name, frag := range map[string]string{
		"cms":   p4all.CountMinSketchModule(inst),
		"bloom": p4all.BloomFilterModule(inst),
		"kvs":   p4all.KeyValueStoreModule(inst),
		"ht":    p4all.HashTableModule(inst),
	} {
		if frag == "" {
			t.Errorf("%s: empty fragment", name)
		}
	}
}

func TestPublicAPIResolveOnly(t *testing.T) {
	u, err := p4all.ParseAndResolve(`
symbolic int n;
struct meta { bit<8>[n] f; }
action a()[int i] { meta.f[i] = 1; }
control main { apply { for (i < n) { a()[i]; } } }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Symbolics) != 1 {
		t.Errorf("symbolics = %d", len(u.Symbolics))
	}
}

func TestExactOptions(t *testing.T) {
	opts := p4all.Exact()
	if opts.Solver.Gap >= 0 && opts.Solver.Gap != -1 {
		t.Errorf("Exact gap = %v", opts.Solver.Gap)
	}
}
