// Benchmarks for the sharded serving runtime (internal/serve,
// docs/SERVING.md). BenchmarkServeScaling measures aggregate replay
// throughput as shard count grows — near-linear on a multicore
// machine for flow-hashed disjoint-key traffic, since every shard
// owns its pipeline and the dispatcher's SPSC queues recycle batch
// slices. One op is a full stream dispatch + drain; allocs/op in the
// steady state stays at 0 per shard hot loop (the dispatcher reuses
// its accumulators, Replay reuses its frame).
package p4all_test

import (
	"fmt"
	"runtime"
	"testing"

	"p4all/internal/difftest"
	"p4all/internal/serve"
	"p4all/internal/sim"
)

// serveBenchStreamN packets per dispatch+drain op: long enough that
// queue hand-off amortizes against replay work.
const serveBenchStreamN = 65536

// serveShardCounts is the benchmark matrix: 1, 2, GOMAXPROCS
// (deduplicated — on a single-core runner this is just 1 and 2).
func serveShardCounts() []int {
	out := []int{1}
	for _, n := range []int{2, runtime.GOMAXPROCS(0)} {
		if n > out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// BenchmarkServeScaling replays the NetCache difftest stream through
// the sharded runtime at increasing shard counts. pkts/sec is the
// aggregate across shards; the speedup over shards=1 is the scaling
// figure (eval.FigureScaling reports the same sweep as a table).
func BenchmarkServeScaling(b *testing.B) {
	compiled, _ := simBenchSetup(b)
	res := compiled["NetCache"]
	var spec difftest.AppSpec
	for _, s := range difftest.Specs() {
		if s.Name == "NetCache" {
			spec = s
		}
	}
	// A longer, uniform-key stream: zipf skew concentrates traffic on
	// few keys, which under flow hashing would imbalance the shards
	// and understate scaling; uniform keys are the disjoint-key best
	// case the acceptance criterion names.
	stream := difftest.GenStream(spec, 1, serveBenchStreamN)
	uniform := make([]sim.Packet, len(stream))
	for i, pkt := range stream {
		up := make(sim.Packet, len(pkt))
		for k, v := range pkt {
			up[k] = v
		}
		up["query.key"] = uint64(i*2654435761) & 0xFFF // spread evenly over the key space
		uniform[i] = up
	}

	for _, shards := range serveShardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rt, err := serve.NewSimRuntime(serve.SimConfig{
				Unit: res.Unit, Layout: res.Layout,
				Shards: shards, BatchSize: 256, KeyField: "query.key",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			// Warm up: settles lazily-grown batch accumulators and free
			// rings before the allocation count starts.
			if err := rt.DispatchAll(uniform); err != nil {
				b.Fatal(err)
			}
			rt.Drain()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.DispatchAll(uniform); err != nil {
					b.Fatal(err)
				}
				rt.Drain()
			}
			b.StopTimer()
			if err := rt.Err(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(uniform))*float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}
