# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# commands so local `make check bench` reproduces a green build.

# pipefail so a failing `go test -bench` is not masked by tee.
SHELL := /bin/bash -o pipefail

GO        ?= go
# The benchmark families CI measures: the ILP solver scaling pair
# (gated on ns/op), the sim engine benchmarks (plan replay and the VM's
# batched replay gated on both ns/op and allocs/op, with the VM
# additionally held to >=1.5x the plan's speed within the same run),
# the sharded serving runtime (gated on allocs/op — its hot loop is
# pinned at zero), the translation validator (gated on ns/op — a
# path-count blowup shows up here), the multi-tenant warm re-solves
# (both the nudge and the harder flip variant gated on ns/op and
# allocs/op — the sub-second elastic-reallocation claim and the
# solver's node-throughput work ride on them), plus the Figure 9 and
# drift end-to-end benchmarks (reported, never gated — see
# cmd/benchgate).
BENCH     ?= ILPSolve|Figure9UnrollBound|FigureDrift|SimProcess|SimReplay|SimReplayVM|ServeScaling|Certify|MultiTenantResolve
BENCHTIME ?= 3x
COUNT     ?= 6
BASELINE  ?= BENCH_BASELINE.json

.PHONY: build test race lint check bench bench-baseline bench-gate \
	bench-profile difftest difftest-vm fuzz-smoke serve-smoke certify \
	multitenant

# Per-target budget for the CI fuzz smoke (see docs/DIFFTEST.md). Four
# targets at 22s each keep the job's total fuzz budget where it was
# when three targets ran at 30s.
FUZZTIME ?= 22s
FUZZPKG  := ./internal/difftest/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

lint:
	golangci-lint run

check: build test race

# bench writes the raw output to bench-new.txt for benchstat/benchgate.
# -benchmem so the allocs/op columns feed benchgate's allocation gate.
# The output goes through a temp file moved into place only on success:
# tee would otherwise truncate bench-new.txt the moment the pipeline
# starts, so a failed run (even a build error) used to leave a stale or
# empty file behind for bench-gate to compare against.
bench:
	rm -f bench-new.txt
	$(GO) test -run=NONE -bench='$(BENCH)' -benchtime=$(BENCHTIME) -count=$(COUNT) -benchmem ./... | tee bench-new.tmp \
		&& mv bench-new.tmp bench-new.txt \
		|| { rm -f bench-new.tmp; exit 1; }

# bench-gate compares bench-new.txt against the checked-in baseline:
# fails on a >25% geomean ns/op regression in the gated benchmarks, on
# any allocs/op increase in the compiled-engine replay benchmarks, or
# when the VM's batched replay drops below 1.5x the plan engine's
# speed within the same run.
bench-gate:
	$(GO) run ./cmd/benchgate -baseline $(BASELINE) < bench-new.txt

# bench-baseline re-measures and rewrites the checked-in baseline. Run
# it on a CI-class runner (see docs/CI.md) so the numbers the gate
# compares against were produced on comparable hardware.
bench-baseline:
	$(GO) test -run=NONE -bench='$(BENCH)' -benchtime=$(BENCHTIME) -count=$(COUNT) -benchmem ./... | $(GO) run ./cmd/benchgate -baseline $(BASELINE) -write

# bench-profile captures a pprof CPU profile of the headline solver
# benchmarks (the multi-tenant warm re-solves — the models where node
# throughput dominates). CI uploads the profile plus the test binary
# as an artifact so a bench-gate failure can be diagnosed offline:
#   go tool pprof ilp-bench.test ilp-cpu.prof
# (see docs/SOLVER_PERF.md).
bench-profile:
	$(GO) test -run=NONE -bench=MultiTenantResolve -benchtime=1x -benchmem \
		-cpuprofile=ilp-cpu.prof -o ilp-bench.test ./internal/multitenant/

# difftest runs the full differential-testing matrix offline: six
# oracles x four apps x three budgets (see docs/DIFFTEST.md).
difftest:
	$(GO) run ./cmd/difftest -seed 1 -n 10000

# difftest-vm runs the full oracle matrix once per compiled engine —
# the replay oracles on the closure plan, then again on the bytecode
# VM — so the VM's batched execution sits under every oracle, not just
# the engine-equivalence one. Both runs execute even if the first
# fails; failure reports with minimized repro streams land in
# difftest-failures/ for CI artifact upload.
DIFFTEST_N ?= 10000
difftest-vm:
	mkdir -p difftest-failures
	rc=0; \
	$(GO) run ./cmd/difftest -seed 1 -n $(DIFFTEST_N) -engine plan \
		-failures difftest-failures/plan.txt || rc=1; \
	$(GO) run ./cmd/difftest -seed 1 -n $(DIFFTEST_N) -engine vm \
		-failures difftest-failures/vm.txt || rc=1; \
	exit $$rc

# certify compiles every benchmark app with the translation validator
# enabled, writing one equivalence certificate per app to $(CERTDIR)
# (CI uploads them as artifacts), then runs the examples — which also
# compile with Certify — so a validator regression fails the build
# before any generated P4 is trusted (see
# docs/TRANSLATION_VALIDATION.md).
CERTDIR ?= certs
CERTAPPS := netcache sketchlearn precision conquest
certify:
	mkdir -p $(CERTDIR)
	for app in $(CERTAPPS); do \
		$(GO) run ./cmd/p4allc -app $$app -certify \
			-cert $(CERTDIR)/$$app.json -o /dev/null || exit 1; \
	done
	for ex in quickstart portability netcache sketchlearn; do \
		$(GO) run ./examples/$$ex > /dev/null || exit 1; \
	done

# multitenant is the PR-acceptance scenario for the joint compiler: a
# three-tenant mix (NetCache + SketchLearn + FlowRadar) compiled into
# one pipeline with fairness weights and utility floors, certified by
# the translation validator per tenant, plus the multi-tenant package
# tests and the per-tenant differential-testing oracle (see
# docs/MULTITENANT.md). Solver limits stay at the compiler's defaults:
# the 10-stage evaluation target under floors needs the full budget to
# find its first incumbent.
MTDIR ?= mtcerts
multitenant:
	mkdir -p $(MTDIR)
	$(GO) run ./cmd/p4allc -app netcache,sketchlearn,flowradar \
		-mem 524288 -weights 1,1,2 -minutil 1024 -det \
		-certify -cert $(MTDIR)/joint.json -o /dev/null
	$(GO) test ./internal/multitenant/
	$(GO) test ./internal/difftest/ -run TestTenantOracle

# fuzz-smoke gives each coverage-guided target a short budget on top of
# the checked-in corpora. Crashers land in
# internal/difftest/testdata/fuzz/<Target>/ — commit them as
# regression inputs after fixing the bug.
fuzz-smoke:
	$(GO) test $(FUZZPKG) -run='^$$' -fuzz=FuzzSimVsGolden -fuzztime=$(FUZZTIME)
	$(GO) test $(FUZZPKG) -run='^$$' -fuzz=FuzzVMVsPlan -fuzztime=$(FUZZTIME)
	$(GO) test $(FUZZPKG) -run='^$$' -fuzz=FuzzSnapshotRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test $(FUZZPKG) -run='^$$' -fuzz=FuzzMigrateCMS -fuzztime=$(FUZZTIME)

# serve-smoke boots the sharded UDP NetCache server on a loopback port,
# drives Zipf traffic at it with the load generator, and fails unless
# the observed hit rate clears the floor and the server acknowledges
# the shutdown frame (see docs/SERVING.md). An end-to-end check of
# cmd/netcacheserve + cmd/netcacheload over a real socket.
SMOKE_ADDR ?= 127.0.0.1:19640
serve-smoke:
	$(GO) build -o bin/netcacheserve ./cmd/netcacheserve
	$(GO) build -o bin/netcacheload ./cmd/netcacheload
	./bin/netcacheserve -addr $(SMOKE_ADDR) -shards 2 -duration 60s & \
	server=$$!; \
	sleep 1; \
	./bin/netcacheload -addr $(SMOKE_ADDR) -clients 4 -requests 200000 \
		-shutdown -minhit 0.4 || { kill $$server 2>/dev/null; exit 1; }; \
	wait $$server
